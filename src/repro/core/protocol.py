"""Controller interface and replacement-process bookkeeping.

Both the paper's SR scheme and the AR baseline repair holes through
*replacement processes*: a process starts when some head decides to fill a
vacant cell, every cascading move belongs to the process that caused it, and
the process ends either by *converging* (a spare node was found, so the last
move did not create a new vacancy) or by *failing* (the cascade dead-ended or
exceeded its hop budget).  The per-process records defined here are what the
experiments of Section 5 aggregate: number of processes initiated, number of
node movements, total moving distance, and success rate.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.grid.virtual_grid import GridCoord
from repro.network.mobility import MoveRecord
from repro.network.node import MESSAGE_COST
from repro.network.state import WsnState


class ProcessStatus(enum.Enum):
    """Lifecycle of a replacement process."""

    ACTIVE = "active"
    CONVERGED = "converged"
    FAILED = "failed"


@dataclass
class ReplacementProcess:
    """One replacement process serving one detected hole."""

    process_id: int
    origin_cell: GridCoord
    initiator_cell: GridCoord
    started_round: int
    status: ProcessStatus = ProcessStatus.ACTIVE
    finished_round: Optional[int] = None
    moves: List[MoveRecord] = field(default_factory=list)
    notifications_sent: int = 0

    @property
    def move_count(self) -> int:
        """Number of node movements performed by this process so far."""
        return len(self.moves)

    @property
    def total_distance(self) -> float:
        """Total moving distance (metres) of this process so far."""
        return sum(move.distance for move in self.moves)

    @property
    def is_active(self) -> bool:
        """Whether the process is still running."""
        return self.status is ProcessStatus.ACTIVE

    @property
    def converged(self) -> bool:
        """Whether the process finished successfully (its hole was repaired)."""
        return self.status is ProcessStatus.CONVERGED

    @property
    def failed(self) -> bool:
        """Whether the process failed (its cascade dead-ended)."""
        return self.status is ProcessStatus.FAILED

    def record_move(self, move: MoveRecord) -> None:
        """Append one movement to the process's move list."""
        self.moves.append(move)

    def mark_converged(self, round_index: int) -> None:
        """Mark the process successfully finished in ``round_index``."""
        self.status = ProcessStatus.CONVERGED
        self.finished_round = round_index

    def mark_failed(self, round_index: int) -> None:
        """Mark the process failed in ``round_index``."""
        self.status = ProcessStatus.FAILED
        self.finished_round = round_index


@dataclass
class RoundOutcome:
    """What happened during one synchronous round."""

    round_index: int
    moves: List[MoveRecord] = field(default_factory=list)
    processes_started: List[int] = field(default_factory=list)
    processes_converged: List[int] = field(default_factory=list)
    processes_failed: List[int] = field(default_factory=list)
    messages_sent: int = 0

    @property
    def move_count(self) -> int:
        """Number of movements performed this round."""
        return len(self.moves)

    @property
    def total_distance(self) -> float:
        """Total distance (metres) moved this round."""
        return sum(move.distance for move in self.moves)

    @property
    def made_progress(self) -> bool:
        """Whether anything at all happened in the round."""
        return bool(
            self.moves
            or self.processes_started
            or self.processes_converged
            or self.processes_failed
            or self.messages_sent
        )


class MobilityController(abc.ABC):
    """A distributed hole-recovery scheme driven by the round-based engine.

    A controller is bound to one :class:`~repro.network.state.WsnState` and
    mutates it (through :meth:`WsnState.move_node`) as its heads act.  The
    engine calls :meth:`execute_round` once per synchronous round.
    """

    #: Human-readable scheme name used in metric records and plots.
    name: str = "controller"

    def __init__(self) -> None:
        self._processes: Dict[int, ReplacementProcess] = {}
        self._next_process_id = 0
        #: Joules debited from a head per control message it sends.  The
        #: engine overrides this from its energy model so node-level message
        #: debits follow the configured physics.
        self.message_cost: float = MESSAGE_COST

    # ----------------------------------------------------------------- rounds
    @abc.abstractmethod
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one synchronous round of the scheme on ``state``."""

    def is_quiescent(self, state: WsnState) -> bool:
        """Whether the controller has no pending work of its own.

        The engine combines this with the hole count and the per-round
        progress flag to decide when to stop.
        """
        return not any(process.is_active for process in self._processes.values())

    # -------------------------------------------------------------- processes
    def processes(self) -> List[ReplacementProcess]:
        """All replacement processes ever started, in creation order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def active_processes(self) -> List[ReplacementProcess]:
        """The processes still running, in creation order."""
        return [p for p in self.processes() if p.is_active]

    def process(self, process_id: int) -> ReplacementProcess:
        """The process with id ``process_id`` (KeyError when unknown)."""
        return self._processes[process_id]

    def _start_process(
        self, origin_cell: GridCoord, initiator_cell: GridCoord, round_index: int
    ) -> ReplacementProcess:
        process = ReplacementProcess(
            process_id=self._next_process_id,
            origin_cell=origin_cell,
            initiator_cell=initiator_cell,
            started_round=round_index,
        )
        self._processes[process.process_id] = process
        self._next_process_id += 1
        return process

    # ------------------------------------------------------------- aggregates
    @property
    def total_processes(self) -> int:
        """Number of replacement processes ever started."""
        return len(self._processes)

    @property
    def total_moves(self) -> int:
        """Total node movements across all processes."""
        return sum(p.move_count for p in self._processes.values())

    @property
    def total_distance(self) -> float:
        """Total moving distance (metres) across all processes."""
        return sum(p.total_distance for p in self._processes.values())

    @property
    def converged_processes(self) -> int:
        """Number of processes that finished successfully."""
        return sum(1 for p in self._processes.values() if p.converged)

    @property
    def failed_processes(self) -> int:
        """Number of processes that failed."""
        return sum(1 for p in self._processes.values() if p.failed)

    @property
    def success_rate(self) -> float:
        """Fraction of finished-or-active processes that converged (0..1).

        Matches the paper's Figure 6(b): the percentage of initiated
        replacement processes that approach a spare node and converge.
        Processes still active when the simulation stops count as failures,
        because they did not converge within the allotted rounds.
        """
        if not self._processes:
            return 1.0
        return self.converged_processes / len(self._processes)

    def describe(self) -> str:
        """One-line summary used by examples and debug output."""
        return (
            f"{self.name}: processes={self.total_processes} "
            f"(converged={self.converged_processes}, failed={self.failed_processes}), "
            f"moves={self.total_moves}, distance={self.total_distance:.1f} m"
        )
