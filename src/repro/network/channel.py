"""Pluggable communication-channel models for control-message traffic.

The paper assumes a perfect one-round-latency control channel: a notification
sent in round ``t`` is always received in round ``t + 1``.  This module makes
that assumption a *pluggable model* so scenarios can stress the schemes under
degraded communication, exactly the way the failure layer stresses them with
degraded sensing:

* the **declarative** layer — :class:`ChannelModel`, a frozen
  ``(kind, params, ack_timeout, max_retries)`` description naming a kind from
  :data:`CHANNEL_KINDS`.  Scenario files (their ``[channel]`` table) and
  :class:`~repro.experiments.orchestration.RunSpec` carry models (hashable,
  picklable, JSON/TOML-serializable, covered by the run-cache key);
* the **runtime** layer — :class:`ChannelState`, built per run by
  :func:`build_channel`.  It owns the run's single
  :class:`~repro.network.messages.Mailbox`, applies the kind's delivery
  semantics (latency, i.i.d. drops, spatial jamming), records the traffic
  statistics the metrics layer reports, and logs every transmission so the
  engine can debit message energy from the actual senders.

Shipped kinds
-------------

``perfect``
    Today's semantics: every message is delivered exactly one round after it
    was sent.  This is the default; runs under it are bit-identical to runs
    of the pre-channel codebase.
``lossy``
    Each message is independently dropped with probability
    ``drop_probability``, decided by the channel's own seeded RNG stream (so
    loss patterns are reproducible and independent of the controller
    stream).  Unreliable: receivers acknowledge requests and senders resend
    unacknowledged ones.
``delayed``
    Reliable, but every message takes ``latency`` rounds instead of one —
    the round-based analogue of a slow relay backbone.
``jammed``
    Perfect outside a spatio-temporal blackout: messages sent while
    ``from_round <= round < until_round`` whose source or destination cell
    lies inside the jammed cell rectangle ``region = [x0, y0, x1, y1]``
    (inclusive) are dropped.  Composes with the failure layer's
    ``region_jamming`` to model an attack that takes out both sensing and
    comms in an area.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.grid.virtual_grid import GridCoord
from repro.network.failures import FrozenParams, freeze_params, thaw_params
from repro.network.messages import Mailbox, Message, MessageKind

__all__ = [
    "CHANNEL_KINDS",
    "ChannelModel",
    "ChannelState",
    "ChannelStats",
    "DEFAULT_CHANNEL",
    "available_channel_kinds",
    "build_channel",
    "channel_from_dict",
    "channel_to_dict",
    "parse_channel_spec",
]


@dataclass(frozen=True)
class ChannelModel:
    """Declarative description of a run's control channel.

    Attributes
    ----------
    kind:
        Name of the channel kind, resolved through :data:`CHANNEL_KINDS`.
    params:
        Kind-specific parameters in the canonical sorted-tuple form of
        :func:`~repro.network.failures.freeze_params` (use
        :meth:`with_params` to construct from keywords).
    ack_timeout:
        Rounds a sender waits for a :attr:`~repro.network.messages.MessageKind.REPLACEMENT_ACK`
        before resending a request (only used by unreliable kinds).
    max_retries:
        Resend budget per request; once exhausted the owning replacement
        process gives up and is marked failed.
    """

    kind: str = "perfect"
    params: FrozenParams = ()
    ack_timeout: int = 3
    max_retries: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(dict(self.params)))
        if self.ack_timeout < 1:
            raise ValueError(f"ack_timeout must be >= 1, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        # Eager validation: a bad kind or parameter set fails at construction
        # time with the builder's actionable error, not mid-run.
        build_channel(self, random.Random(0))

    @classmethod
    def with_params(cls, kind: str, *, ack_timeout: int = 3, max_retries: int = 8, **params: object) -> "ChannelModel":
        """Build a model from keyword parameters (``freeze_params`` applied)."""
        return cls(
            kind=kind,
            params=freeze_params(params),
            ack_timeout=ack_timeout,
            max_retries=max_retries,
        )

    @property
    def reliable(self) -> bool:
        """Whether the kind never drops messages (no ack/retry layer needed)."""
        return KIND_RELIABILITY[self.kind]


@dataclass(frozen=True)
class ChannelStats:
    """Aggregate traffic statistics of one run's channel."""

    sent: int
    delivered: int
    dropped: int
    in_flight: int
    #: Mean rounds between send and delivery over the delivered messages
    #: (0.0 when nothing was delivered).
    mean_delivery_latency: float


class ChannelState:
    """Runtime channel of one run: owns the mailbox, applies the semantics.

    Parameters
    ----------
    model:
        The declarative model this runtime state implements.
    rng:
        Seeded stream deciding stochastic drops; independent of the
        controller stream so loss patterns do not perturb movement targets.
    latency:
        Rounds between send and delivery of surviving messages.
    drop_probability:
        I.i.d. probability that a message is lost in transit.
    jam_region:
        Optional inclusive cell rectangle ``(x0, y0, x1, y1)``; messages
        touching it during the jam window are dropped.
    jam_window:
        ``(from_round, until_round)`` half-open round interval of the jam.

    Whether the channel can drop messages (engaging the controllers'
    ack/retry layer) is not a constructor knob: it is declared once per kind
    in :data:`KIND_RELIABILITY` and read from there, so the runtime and the
    documentation can never disagree about it.
    """

    def __init__(
        self,
        model: ChannelModel,
        rng: random.Random,
        latency: int = 1,
        drop_probability: float = 0.0,
        jam_region: Optional[Tuple[int, int, int, int]] = None,
        jam_window: Tuple[int, int] = (0, 0),
    ) -> None:
        self.model = model
        self.rng = rng
        self.mailbox = Mailbox(latency=latency)
        self.drop_probability = drop_probability
        self.jam_region = jam_region
        self.jam_window = jam_window
        self.reliable = KIND_RELIABILITY[model.kind]
        self._dropped_count = 0
        self._sent_total = 0
        self._latency_total = 0
        #: Charged with the sender's node id at the moment of each
        #: transmission (delivered or dropped — the radio fired either way).
        #: The engine installs a hook that debits the configured message cost
        #: from the sender's battery, so the energy books reflect the send
        #: within the round it happens, exactly like the movement debit.
        self.debit_hook: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------ stats
    @property
    def sent_count(self) -> int:
        """Messages ever transmitted (delivered, dropped, or still in flight)."""
        return self._sent_total

    @property
    def delivered_count(self) -> int:
        """Messages ever delivered to their destination cell."""
        return self.mailbox.delivered_count

    @property
    def dropped_count(self) -> int:
        """Messages lost in transit (drops and jamming)."""
        return self._dropped_count

    @property
    def pending_count(self) -> int:
        """Messages still in flight."""
        return self.mailbox.pending_count

    @property
    def mean_delivery_latency(self) -> float:
        """Mean rounds between send and delivery (0.0 with no deliveries)."""
        delivered = self.mailbox.delivered_count
        return self._latency_total / delivered if delivered else 0.0

    @property
    def requires_ack(self) -> bool:
        """Whether senders must track acknowledgements and retry."""
        return not self.reliable

    def stats(self) -> ChannelStats:
        """Snapshot of the channel's aggregate traffic statistics."""
        return ChannelStats(
            sent=self.sent_count,
            delivered=self.delivered_count,
            dropped=self.dropped_count,
            in_flight=self.pending_count,
            mean_delivery_latency=self.mean_delivery_latency,
        )

    # ------------------------------------------------------------------ wire
    def _is_jammed(self, message: Message) -> bool:
        if self.jam_region is None:
            return False
        start, end = self.jam_window
        if not start <= message.sent_round < end:
            return False
        x0, y0, x1, y1 = self.jam_region
        for cell in (message.source_cell, message.target_cell):
            if x0 <= cell.x <= x1 and y0 <= cell.y <= y1:
                return True
        return False

    def _is_lost(self, message: Message) -> bool:
        if self._is_jammed(message):
            return True
        return self.drop_probability > 0 and self.rng.random() < self.drop_probability

    def send(
        self,
        kind: MessageKind,
        source_cell: GridCoord,
        target_cell: GridCoord,
        round_index: int,
        sender_id: int,
        process_id: Optional[int] = None,
        payload: Optional[dict] = None,
    ) -> Message:
        """Transmit one message; it is queued or lost per the channel semantics.

        The transmission always costs energy (the radio fired either way), so
        the sender is logged for the engine's energy debit even when the
        message is dropped.
        """
        message = Message(
            kind=kind,
            source_cell=source_cell,
            target_cell=target_cell,
            sent_round=round_index,
            process_id=process_id,
            payload=payload,
            sender_id=sender_id,
            message_id=self.mailbox.stamp_id(),
        )
        self._sent_total += 1
        if self.debit_hook is not None:
            self.debit_hook(sender_id)
        if self._is_lost(message):
            self._dropped_count += 1
        else:
            self.mailbox.send(message)
        return message

    def deliver(self, round_index: int) -> Dict[GridCoord, List[Message]]:
        """Messages arriving this round, grouped by destination cell.

        The engine calls this once at the start of every round, before the
        controller acts — a message sent in round ``t`` is therefore first
        visible in round ``t + latency``, never earlier.
        """
        if not self.mailbox.pending_count:
            return {}
        inbox = self.mailbox.deliver(round_index)
        for messages in inbox.values():
            for message in messages:
                self._latency_total += round_index - message.sent_round
        return inbox


# ------------------------------------------------------------------ builders
def _checked_number(value: object, kind: str, key: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(
            f"channel kind {kind!r}: parameter {key!r} must be a number, got {value!r}"
        )
    return value


def _reject_unknown(params: Dict[str, object], kind: str, allowed: Tuple[str, ...]) -> None:
    if params:
        raise ValueError(
            f"channel kind {kind!r} got unknown parameter(s) {sorted(params)}; "
            f"allowed: {sorted(allowed)}"
        )


def _build_perfect(model: ChannelModel, params: Dict[str, object], rng: random.Random) -> ChannelState:
    _reject_unknown(params, "perfect", ())
    return ChannelState(model, rng)


def _build_lossy(model: ChannelModel, params: Dict[str, object], rng: random.Random) -> ChannelState:
    probability = _checked_number(
        params.pop("drop_probability", None), "lossy", "drop_probability"
    )
    _reject_unknown(params, "lossy", ("drop_probability",))
    if not 0.0 <= probability < 1.0:
        raise ValueError(
            f"channel kind 'lossy': drop_probability must be in [0, 1), got {probability}"
        )
    return ChannelState(model, rng, drop_probability=float(probability))


def _build_delayed(model: ChannelModel, params: Dict[str, object], rng: random.Random) -> ChannelState:
    latency = int(_checked_number(params.pop("latency", None), "delayed", "latency"))
    _reject_unknown(params, "delayed", ("latency",))
    if latency < 1:
        raise ValueError(f"channel kind 'delayed': latency must be >= 1, got {latency}")
    return ChannelState(model, rng, latency=latency)


def _build_jammed(model: ChannelModel, params: Dict[str, object], rng: random.Random) -> ChannelState:
    region = params.pop("region", None)
    from_round = params.pop("from_round", None)
    until_round = params.pop("until_round", None)
    _reject_unknown(params, "jammed", ("region", "from_round", "until_round"))
    if (
        not isinstance(region, (list, tuple))
        or len(region) != 4
        or not all(isinstance(c, int) and not isinstance(c, bool) for c in region)
    ):
        raise ValueError(
            "channel kind 'jammed': parameter 'region' must be an inclusive "
            f"cell rectangle [x0, y0, x1, y1] of integers, got {region!r}"
        )
    x0, y0, x1, y1 = region
    if x0 > x1 or y0 > y1:
        raise ValueError(
            f"channel kind 'jammed': region corners must be ordered, got {list(region)}"
        )
    start = int(_checked_number(from_round, "jammed", "from_round"))
    end = int(_checked_number(until_round, "jammed", "until_round"))
    if start < 0 or end <= start:
        raise ValueError(
            "channel kind 'jammed': need 0 <= from_round < until_round, got "
            f"from_round={start}, until_round={end}"
        )
    return ChannelState(
        model,
        rng,
        jam_region=(x0, y0, x1, y1),
        jam_window=(start, end),
    )


#: Declarative channel kinds: name -> builder taking the thawed parameter dict.
CHANNEL_KINDS: Dict[
    str, Callable[[ChannelModel, Dict[str, object], random.Random], ChannelState]
] = {
    "perfect": _build_perfect,
    "lossy": _build_lossy,
    "delayed": _build_delayed,
    "jammed": _build_jammed,
}


#: Whether each kind can lose messages; unreliable kinds engage the
#: controllers' ack/retry layer.  Kept next to :data:`CHANNEL_KINDS` so a new
#: kind must declare its reliability (the consistency check below enforces it).
KIND_RELIABILITY: Dict[str, bool] = {
    "perfect": True,
    "lossy": False,
    "delayed": True,
    "jammed": False,
}

assert set(KIND_RELIABILITY) == set(CHANNEL_KINDS), (
    "every channel kind must declare its reliability"
)


def available_channel_kinds() -> Tuple[str, ...]:
    """All declarable channel kinds, sorted."""
    return tuple(sorted(CHANNEL_KINDS))


def build_channel(model: ChannelModel, rng: random.Random) -> ChannelState:
    """Instantiate the runtime channel a :class:`ChannelModel` describes.

    Raises :class:`ValueError` with an actionable message on an unknown kind,
    an unknown parameter, or a malformed parameter value.
    """
    try:
        builder = CHANNEL_KINDS[model.kind]
    except KeyError:
        raise ValueError(
            f"unknown channel kind {model.kind!r}; "
            f"available: {list(available_channel_kinds())}"
        ) from None
    params = {key: _thaw_value(value) for key, value in thaw_params(model.params).items()}
    return builder(model, params, rng)


def _thaw_value(value: object) -> object:
    if isinstance(value, tuple):
        return [_thaw_value(item) for item in value]
    return value


#: The paper's communication assumption; the default everywhere.
DEFAULT_CHANNEL = ChannelModel()


def channel_to_dict(model: Optional[ChannelModel]) -> Optional[Dict[str, object]]:
    """Canonical JSON/TOML-compatible form of a channel model (``None`` passes through)."""
    if model is None:
        return None
    payload: Dict[str, object] = {"kind": model.kind}
    payload.update({key: _thaw_value(value) for key, value in model.params})
    payload["ack_timeout"] = model.ack_timeout
    payload["max_retries"] = model.max_retries
    return payload


def channel_from_dict(payload: Optional[Mapping[str, object]]) -> Optional[ChannelModel]:
    """Inverse of :func:`channel_to_dict` (``None`` passes through)."""
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ValueError(f"channel must be a table, got {type(payload).__name__}")
    table = dict(payload)
    kind = table.pop("kind", None)
    if not isinstance(kind, str) or not kind:
        raise ValueError(
            f"channel kind must be one of {list(available_channel_kinds())}, got {kind!r}"
        )
    ack_timeout = table.pop("ack_timeout", 3)
    max_retries = table.pop("max_retries", 8)
    for name, value in (("ack_timeout", ack_timeout), ("max_retries", max_retries)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"channel {name} must be an integer, got {value!r}")
    return ChannelModel(
        kind=kind,
        params=freeze_params(table),
        ack_timeout=ack_timeout,
        max_retries=max_retries,
    )


def parse_channel_spec(text: str) -> ChannelModel:
    """Parse a compact CLI channel spec into a :class:`ChannelModel`.

    Accepted forms: ``perfect``, ``lossy:<drop_probability>``, and
    ``delayed:<latency>``.  The ``jammed`` kind needs a region and a window
    and is only expressible through a scenario file's ``[channel]`` table.
    """
    kind, _, argument = text.partition(":")
    kind = kind.strip()
    argument = argument.strip()
    if kind == "perfect":
        if argument:
            raise ValueError("channel spec 'perfect' takes no argument")
        return DEFAULT_CHANNEL
    if kind == "lossy":
        try:
            probability = float(argument)
        except ValueError:
            raise ValueError(
                f"channel spec 'lossy:<p>' needs a drop probability, got {text!r}"
            ) from None
        return ChannelModel.with_params("lossy", drop_probability=probability)
    if kind == "delayed":
        try:
            latency = int(argument)
        except ValueError:
            raise ValueError(
                f"channel spec 'delayed:<k>' needs an integer latency, got {text!r}"
            ) from None
        return ChannelModel.with_params("delayed", latency=latency)
    raise ValueError(
        f"unknown channel spec {text!r}; use 'perfect', 'lossy:<p>', 'delayed:<k>', "
        "or a scenario file's [channel] table for the 'jammed' kind"
    )
