"""Unit tests for the connectivity evaluation (GAF overlay argument)."""

import networkx as nx
import pytest

from repro.grid.connectivity import (
    connected_component_count,
    head_connectivity_graph,
    is_head_network_connected,
    is_node_network_connected,
    node_connectivity_graph,
)
from repro.grid.virtual_grid import GridCoord
from repro.network.radio import UnitDiskRadio

from helpers import make_hole


class TestHeadOverlay:
    def test_full_coverage_implies_connected_heads(self, dense_state):
        """The GAF claim: one head per cell with R = sqrt(5)*r keeps heads connected."""
        assert is_head_network_connected(dense_state)
        graph = head_connectivity_graph(dense_state)
        assert graph.number_of_nodes() == dense_state.grid.cell_count

    def test_full_coverage_implies_connected_network(self, dense_state):
        assert is_node_network_connected(dense_state)
        assert connected_component_count(dense_state) == 1

    def test_wide_hole_band_disconnects_heads(self, sparse_state):
        """Emptying two full adjacent columns splits the head overlay in two."""
        for y in range(sparse_state.grid.rows):
            make_hole(sparse_state, GridCoord(1, y))
            make_hole(sparse_state, GridCoord(2, y))
        assert not is_head_network_connected(sparse_state)
        assert connected_component_count(sparse_state) >= 2

    def test_empty_network_not_connected(self, sparse_state):
        for coord in list(sparse_state.grid.all_coords()):
            make_hole(sparse_state, coord)
        assert not is_head_network_connected(sparse_state)
        assert connected_component_count(sparse_state) == 0

    def test_custom_radio(self, dense_state):
        tiny = UnitDiskRadio(0.1)
        graph = head_connectivity_graph(dense_state, radio=tiny)
        assert graph.number_of_edges() == 0
        assert not is_head_network_connected(dense_state, radio=tiny)


class TestGraphs:
    def test_node_graph_includes_all_enabled(self, dense_state):
        graph = node_connectivity_graph(dense_state)
        assert graph.number_of_nodes() == dense_state.enabled_count

    def test_node_graph_excludes_disabled(self, dense_state):
        victim = dense_state.members_of(GridCoord(0, 0))[0]
        dense_state.disable_node(victim.node_id)
        graph = node_connectivity_graph(dense_state)
        assert victim.node_id not in graph

    def test_graphs_are_networkx_objects(self, dense_state):
        assert isinstance(node_connectivity_graph(dense_state), nx.Graph)
        assert isinstance(head_connectivity_graph(dense_state), nx.Graph)
