"""Figure 4: the dual-path Hamilton construction for odd-by-odd grids.

Regenerates the 5x5 layout of the paper's Figure 4 and benchmarks both the
construction and a full recovery run that exercises Algorithm 2's special
cells (A, B, C, D).
"""

from __future__ import annotations

import pytest

from repro.core.hamilton import DualPathHamiltonCycle
from repro.core.replacement import HamiltonReplacementController
from repro.experiments.figures import figure4_dual_path_layout
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell
from repro.network.failures import TargetedCellFailure
from repro.network.state import WsnState
from repro.sim.engine import run_recovery
from repro.sim.rng import derive_rng


@pytest.mark.benchmark(group="fig4-dual-path-construction")
@pytest.mark.parametrize("columns,rows", [(5, 5), (15, 15), (31, 31)])
def test_fig4_dual_path_construction(benchmark, columns, rows):
    """Time the dual-path construction and check the structural claims of Section 4."""
    grid = VirtualGrid(columns, rows, cell_size=4.4721)

    cycle = benchmark(DualPathHamiltonCycle, grid)

    cycle.validate()
    assert len(cycle.shared_chain()) == columns * rows - 2
    assert cycle.replacement_path_length == columns * rows - 2
    assert len(cycle.path_one()) == columns * rows
    assert len(cycle.path_two()) == columns * rows


@pytest.mark.benchmark(group="fig4-dual-path-layout")
def test_fig4_layout_rendering(benchmark, results_dir):
    """Render the 5x5 dual-path layout of Figure 4."""
    layout = benchmark(figure4_dual_path_layout, 5, 5)

    assert "path one" in layout and "path two" in layout
    (results_dir / "fig4_dual_path_5x5.txt").write_text(layout + "\n")
    print()
    print(layout)


@pytest.mark.benchmark(group="fig4-dual-path-recovery")
@pytest.mark.parametrize(
    "hole",
    [GridCoord(0, 0), GridCoord(1, 1), GridCoord(1, 0), GridCoord(3, 3)],
    ids=["cell-A", "cell-B", "cell-D", "chain-cell"],
)
def test_fig4_recovery_through_special_cells(benchmark, hole):
    """Repair a hole at each special cell of Algorithm 2 on a 5x5 grid."""
    grid = VirtualGrid(5, 5, cell_size=4.4721)

    def run():
        rng = derive_rng(99, f"fig4-{hole.as_tuple()}")
        nodes = deploy_per_cell(grid, 2, rng)
        state = WsnState(grid, nodes)
        TargetedCellFailure(cells=[hole]).apply(state, rng)
        controller = HamiltonReplacementController(DualPathHamiltonCycle(grid))
        result = run_recovery(state, controller, rng)
        return result.metrics

    metrics = benchmark(run)
    assert metrics.final_holes == 0
    assert metrics.success_rate == 1.0
