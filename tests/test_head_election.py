"""Unit tests for the grid-head election policies."""

import pytest

from repro.grid.geometry import Point
from repro.grid.head_election import (
    elect_head,
    highest_energy_policy,
    lowest_id_policy,
    make_round_robin_policy,
    nearest_to_center_policy,
)
from repro.network.node import SensorNode


def node(node_id, x=0.0, y=0.0, energy=100.0):
    return SensorNode(node_id=node_id, position=Point(x, y), energy=energy)


CENTER = Point(0.5, 0.5)


class TestPolicies:
    def test_lowest_id(self):
        candidates = [node(5), node(2), node(9)]
        assert lowest_id_policy(candidates, CENTER).node_id == 2

    def test_highest_energy(self):
        candidates = [node(1, energy=10), node(2, energy=80), node(3, energy=80)]
        # Ties broken by the smaller id.
        assert highest_energy_policy(candidates, CENTER).node_id == 2

    def test_nearest_to_center(self):
        candidates = [node(1, 0.0, 0.0), node(2, 0.4, 0.5), node(3, 0.9, 0.9)]
        assert nearest_to_center_policy(candidates, CENTER).node_id == 2

    def test_nearest_to_center_tie_breaks_by_id(self):
        candidates = [node(7, 0.4, 0.5), node(3, 0.6, 0.5)]
        assert nearest_to_center_policy(candidates, CENTER).node_id == 3

    def test_round_robin_rotates(self):
        policy = make_round_robin_policy(period=1)
        candidates = [node(1), node(2), node(3)]
        elected = [policy(candidates, CENTER).node_id for _ in range(4)]
        assert elected == [1, 2, 3, 1]

    def test_round_robin_period(self):
        policy = make_round_robin_policy(period=2)
        candidates = [node(1), node(2)]
        elected = [policy(candidates, CENTER).node_id for _ in range(4)]
        assert elected == [1, 1, 2, 2]

    def test_round_robin_invalid_period(self):
        with pytest.raises(ValueError):
            make_round_robin_policy(period=0)


class TestElectHead:
    def test_empty_cell_returns_none(self):
        assert elect_head([], CENTER) is None

    def test_ignores_disabled_candidates(self):
        a, b = node(1), node(2)
        a.disable()
        assert elect_head([a, b], CENTER).node_id == 2

    def test_all_disabled_returns_none(self):
        a = node(1)
        a.disable()
        assert elect_head([a], CENTER) is None

    def test_default_policy_is_lowest_id(self):
        assert elect_head([node(9), node(4)], CENTER).node_id == 4

    def test_custom_policy_is_used(self):
        candidates = [node(1, energy=5), node(2, energy=50)]
        head = elect_head(candidates, CENTER, policy=highest_energy_policy)
        assert head.node_id == 2
