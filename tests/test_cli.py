"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["figures", "fig3"]).command == "figures"
        assert parser.parse_args(["compare"]).command == "compare"
        assert parser.parse_args(["lifetime"]).command == "lifetime"
        assert parser.parse_args(["lifetime", "--smoke"]).smoke
        assert parser.parse_args(["analyze", "--spares", "5"]).command == "analyze"
        assert parser.parse_args(["layout"]).command == "layout"

    def test_lifetime_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lifetime", "--schemes", "BOGUS"])

    def test_compare_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "BOGUS"])


class TestAnalyzeCommand:
    def test_prints_theorem2_values(self, capsys):
        assert main(["analyze", "--spares", "12", "--path-length", "19"]) == 0
        output = capsys.readouterr().out
        assert "2.0139" in output
        assert "per-hop distance" in output


class TestLayoutCommand:
    def test_even_grid_prints_cycle(self, capsys):
        assert main(["layout", "--columns", "4", "--rows", "4"]) == 0
        assert "Hamilton cycle" in capsys.readouterr().out

    def test_odd_grid_prints_dual_path(self, capsys):
        assert main(["layout", "--columns", "5", "--rows", "5"]) == 0
        output = capsys.readouterr().out
        assert "Dual-path" in output
        assert "path one" in output


class TestFiguresCommand:
    def test_analytical_figures_only(self, capsys, tmp_path):
        code = main(["figures", "fig3", "fig5", "--csv-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 5" in output
        assert (tmp_path / "fig3_expected_movements.csv").exists()
        assert (tmp_path / "fig5_distance_estimates.csv").exists()

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_structural_figures(self, capsys):
        assert main(["figures", "fig1", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "Hamilton cycle" in output and "Dual-path" in output


class TestCompareCommand:
    def test_small_comparison_runs(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "200",
                "--spare-surplus", "20",
                "--seed", "2",
                "--schemes", "SR", "AR",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SR" in output and "AR" in output
        assert "holes_left" in output

    def test_energy_schemes_available(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "150",
                "--spare-surplus", "10",
                "--seed", "4",
                "--schemes", "SR-energy", "AR-energy",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SR-energy" in output and "AR-energy" in output

    def test_shortcut_scheme_available(self, capsys):
        code = main(
            [
                "compare",
                "--columns", "6",
                "--rows", "6",
                "--deployed", "150",
                "--spare-surplus", "10",
                "--seed", "4",
                "--schemes", "SR-shortcut",
            ]
        )
        assert code == 0
        assert "SR-shortcut" in capsys.readouterr().out


class TestLifetimeCommand:
    def test_small_lifetime_run(self, capsys, tmp_path):
        args = [
            "lifetime",
            "--columns", "6",
            "--rows", "6",
            "--nodes", "144",
            "--spare-surplus", "20",
            "--seed", "7",
            "--initial-energy", "30",
            "--idle-cost", "0.5",
            "--max-rounds", "400",
            "--schemes", "SR", "AR",
            "--csv-dir", str(tmp_path),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "lifetime comparison" in output
        assert "longest-lived scheme" in output
        assert (tmp_path / "lifetime_comparison.csv").exists()

    def test_invalid_physics_is_a_clean_error(self, capsys):
        assert main(["lifetime", "--idle-cost", "0"]) == 2
        assert "idle_cost_per_round" in capsys.readouterr().err

    def test_serial_and_parallel_output_identical(self, capsys):
        args = [
            "lifetime",
            "--columns", "6",
            "--rows", "6",
            "--nodes", "144",
            "--spare-surplus", "20",
            "--seed", "7",
            "--initial-energy", "30",
            "--idle-cost", "0.5",
            "--max-rounds", "400",
            "--schemes", "SR", "AR",
        ]
        assert main(args) == 0
        serial_output = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert serial_output == parallel_output
