"""Per-figure experiment drivers (the reproduction of the paper's evaluation).

The paper's evaluation consists of Figures 3-8 (it has no numbered tables):

* Figure 1(b) and Figure 4 are structural — the directed Hamilton cycle of a
  4x5 grid and the dual-path construction of a 5x5 grid;
* Figures 3 and 5 are analytical — expected movements and expected moving
  distance of a single replacement as a function of the number of spares;
* Figures 6, 7 and 8 are experimental — number of replacement processes,
  success rate, node movements and total moving distance of SR versus AR on
  the 16x16 / 5000-sensor workload.

Every function returns either a rendered layout (structural figures) or an
:class:`~repro.experiments.results.ExperimentResult` whose rows are the data
series of the corresponding figure.  The benchmarks under ``benchmarks/``
call these functions and print the tables; EXPERIMENTS.md records the
paper-versus-measured comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import analysis
from repro.core.hamilton import (
    DualPathHamiltonCycle,
    SerpentineHamiltonCycle,
    build_hamilton_cycle,
)
from repro.experiments.orchestration import RunExecutor
from repro.experiments.persistence import RunCache
from repro.experiments.results import ExperimentResult
from repro.experiments.sweep import run_comparison
from repro.grid.virtual_grid import VirtualGrid
from repro.sim.scenario import ScenarioConfig
from repro.viz.ascii_grid import render_cycle, render_dual_paths

#: Spare-surplus sweep roughly matching the paper's x-axis (N from 10 to 1000).
PAPER_SPARE_VALUES: List[int] = [10, 25, 55, 100, 200, 300, 400, 600, 800, 1000]

#: Much smaller sweep used by unit tests and quick benchmark smoke runs.
QUICK_SPARE_VALUES: List[int] = [10, 55, 200, 600]

#: The paper's simulated deployment (Section 5): 16x16 grid, R = 10 m,
#: 5000 deployed sensors.
SECTION5_CONFIG = ScenarioConfig(
    columns=16, rows=16, communication_range=10.0, deployed_count=5000, seed=2008
)


# --------------------------------------------------------------------------- Fig 1
def figure1_hamilton_layout(columns: int = 4, rows: int = 5, cell_size: float = 1.0) -> str:
    """Figure 1(b): the directed Hamilton cycle threading a 4x5 grid system."""
    grid = VirtualGrid(columns, rows, cell_size)
    cycle = build_hamilton_cycle(grid)
    cycle.validate()
    header = (
        f"Directed Hamilton cycle over a {columns}x{rows} grid "
        f"({type(cycle).__name__}, L = {cycle.replacement_path_length})\n"
    )
    return header + render_cycle(cycle)


# --------------------------------------------------------------------------- Fig 3
def figure3_expected_movements(
    small_spares: Optional[Iterable[int]] = None,
    large_spares: Optional[Iterable[int]] = None,
) -> ExperimentResult:
    """Figure 3: analytical expected movements per replacement.

    Sub-figure (a) is the 4x5 grid (``L = 19``, N up to ~140); sub-figure (b)
    is the 16x16 grid (``L = 255``, N up to ~1400).
    """
    small_spares = list(small_spares) if small_spares is not None else list(range(0, 141, 10))
    large_spares = list(large_spares) if large_spares is not None else list(range(0, 1401, 100))
    result = ExperimentResult(
        name="Figure 3: expected node movements per replacement",
        columns=["grid", "L", "N", "expected_moves"],
        description="Theorem 2: M = sum_i i * P(i)",
    )
    for grid_name, path_length, spare_values in (
        ("4x5", 19, small_spares),
        ("16x16", 255, large_spares),
    ):
        for spares in spare_values:
            result.add_row(
                grid=grid_name,
                L=path_length,
                N=spares,
                expected_moves=analysis.expected_movements(spares, path_length),
            )
    return result


# --------------------------------------------------------------------------- Fig 4
def figure4_dual_path_layout(columns: int = 5, rows: int = 5, cell_size: float = 1.0) -> str:
    """Figure 4: the dual-path Hamilton construction of a 5x5 grid system."""
    grid = VirtualGrid(columns, rows, cell_size)
    cycle = DualPathHamiltonCycle(grid)
    cycle.validate()
    lines = [
        f"Dual-path Hamilton cycle over a {columns}x{rows} grid "
        f"(shared chain of {len(cycle.shared_chain())} cells, L = {cycle.replacement_path_length})",
        f"A = {cycle.cell_a.as_tuple()}, B = {cycle.cell_b.as_tuple()}, "
        f"C = {cycle.cell_c.as_tuple()} (common predecessor), "
        f"D = {cycle.cell_d.as_tuple()} (common successor)",
        "",
        render_dual_paths(cycle),
        "",
        "path one: " + " -> ".join(str(c.as_tuple()) for c in cycle.path_one()[:6]) + " -> ...",
        "path two: " + " -> ".join(str(c.as_tuple()) for c in cycle.path_two()[:6]) + " -> ...",
    ]
    return "\n".join(lines)


# --------------------------------------------------------------------------- Fig 5
def figure5_distance_estimates(
    cell_size: float = 10.0,
    small_spares: Optional[Iterable[int]] = None,
    large_spares: Optional[Iterable[int]] = None,
) -> ExperimentResult:
    """Figure 5: estimated total moving distance of a single replacement (r = 10)."""
    small_spares = list(small_spares) if small_spares is not None else list(range(0, 141, 10))
    large_spares = list(large_spares) if large_spares is not None else list(range(0, 1001, 100))
    result = ExperimentResult(
        name="Figure 5: estimated total moving distance per replacement",
        columns=["grid", "L", "r", "N", "expected_distance"],
        description="1.08 * r per hop times the Theorem-2 expected movements",
    )
    for grid_name, path_length, spare_values in (
        ("4x5", 19, small_spares),
        ("16x16", 255, large_spares),
    ):
        for spares in spare_values:
            result.add_row(
                grid=grid_name,
                L=path_length,
                r=cell_size,
                N=spares,
                expected_distance=analysis.expected_total_distance(
                    spares, path_length, cell_size
                ),
            )
    return result


# ------------------------------------------------------------------- Fig 6 / 7 / 8
def run_section5_experiment(
    spare_values: Optional[Sequence[int]] = None,
    config: Optional[ScenarioConfig] = None,
    trials: int = 1,
    max_rounds: Optional[int] = None,
    schemes: Sequence[str] = ("SR", "AR"),
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
    broker: Optional[object] = None,
) -> ExperimentResult:
    """The shared SR-versus-AR sweep behind Figures 6, 7 and 8.

    Adds the analytical SR predictions (Figures 7(b) and 8(b)) to the
    comparison table produced by
    :func:`repro.experiments.sweep.run_comparison`: the expected number of
    movements per hole is Theorem 2's ``M(N, L)`` and the per-hop distance is
    ``1.08 * r``, both multiplied by the number of holes in the scenario.

    ``executor``, ``cache``, and ``broker`` are forwarded to the sweep
    runner, so the three figure scripts sharing this sweep can run it in
    parallel and reuse each other's persisted run records — and the serve
    layer can answer figure queries through its long-running broker.  Cold
    cells additionally share one initial-state build per (N, trial) scenario
    through the executors' state cache.
    """
    spare_values = list(spare_values) if spare_values is not None else list(PAPER_SPARE_VALUES)
    config = config if config is not None else SECTION5_CONFIG
    comparison = run_comparison(
        config,
        spare_values,
        schemes=schemes,
        trials=trials,
        max_rounds=max_rounds,
        executor=executor,
        cache=cache,
        broker=broker,
    )
    grid = config.make_grid()
    path_length = build_hamilton_cycle(grid).replacement_path_length

    columns = comparison.columns + ["SR_moves_analytic", "SR_distance_analytic"]
    result = ExperimentResult(
        name=f"Section 5 experiment ({config.columns}x{config.rows}, {config.deployed_count} deployed)",
        columns=columns,
        description=comparison.description,
    )
    for row in comparison.rows:
        spare_surplus = int(row["N"])
        holes = float(row["holes"])
        analytic_moves = analysis.expected_network_movements(
            int(round(holes)), spare_surplus, path_length
        )
        analytic_distance = analysis.expected_network_distance(
            int(round(holes)), spare_surplus, path_length, config.cell_size
        )
        result.add_row(
            **row,
            SR_moves_analytic=analytic_moves,
            SR_distance_analytic=analytic_distance,
        )
    return result


def _require_experiment(
    experiment: Optional[ExperimentResult],
    spare_values: Optional[Sequence[int]],
    trials: int,
) -> ExperimentResult:
    if experiment is not None:
        return experiment
    return run_section5_experiment(spare_values=spare_values, trials=trials)


def figure6_processes_and_success(
    experiment: Optional[ExperimentResult] = None,
    spare_values: Optional[Sequence[int]] = None,
    trials: int = 1,
) -> ExperimentResult:
    """Figure 6: replacement processes initiated (a) and success rate (b), AR vs SR."""
    experiment = _require_experiment(experiment, spare_values, trials)
    result = ExperimentResult(
        name="Figure 6: replacement processes and success rate",
        columns=[
            "N",
            "holes",
            "SR_processes",
            "AR_processes",
            "SR_success_pct",
            "AR_success_pct",
        ],
        description="one row per spare surplus N",
    )
    for row in experiment.rows:
        result.add_row(
            N=row["N"],
            holes=row["holes"],
            SR_processes=row["SR_processes"],
            AR_processes=row["AR_processes"],
            SR_success_pct=100.0 * float(row["SR_success_rate"]),
            AR_success_pct=100.0 * float(row["AR_success_rate"]),
        )
    return result


def figure7_node_movements(
    experiment: Optional[ExperimentResult] = None,
    spare_values: Optional[Sequence[int]] = None,
    trials: int = 1,
) -> ExperimentResult:
    """Figure 7: total node movements — experimental AR/SR (a) and analytical SR (b)."""
    experiment = _require_experiment(experiment, spare_values, trials)
    result = ExperimentResult(
        name="Figure 7: number of node movements",
        columns=["N", "holes", "SR_moves", "AR_moves", "SR_moves_analytic"],
        description="experimental (a) and analytical (b) series",
    )
    for row in experiment.rows:
        result.add_row(
            N=row["N"],
            holes=row["holes"],
            SR_moves=row["SR_moves"],
            AR_moves=row["AR_moves"],
            SR_moves_analytic=row["SR_moves_analytic"],
        )
    return result


def figure8_total_distance(
    experiment: Optional[ExperimentResult] = None,
    spare_values: Optional[Sequence[int]] = None,
    trials: int = 1,
) -> ExperimentResult:
    """Figure 8: total moving distance (m) — experimental AR/SR (a) and analytical SR (b)."""
    experiment = _require_experiment(experiment, spare_values, trials)
    result = ExperimentResult(
        name="Figure 8: total moving distance",
        columns=["N", "holes", "SR_distance", "AR_distance", "SR_distance_analytic"],
        description="experimental (a) and analytical (b) series, metres",
    )
    for row in experiment.rows:
        result.add_row(
            N=row["N"],
            holes=row["holes"],
            SR_distance=row["SR_distance"],
            AR_distance=row["AR_distance"],
            SR_distance_analytic=row["SR_distance_analytic"],
        )
    return result
