#!/usr/bin/env python3
"""Scenario: compare SR against AR, virtual-force, and SMART scan balancing.

The paper evaluates SR only against AR, but its introduction argues that
virtual-force methods converge slowly and that grid balancing (SMART) moves
far more nodes than necessary.  Because this library implements all four
schemes behind the same controller interface, one small script can put the
claims side by side on an identical scenario.

Run with ``python examples/baseline_comparison.py``.
"""

from __future__ import annotations

from repro import ScenarioConfig, build_scenario_state, derive_rng
from repro.experiments.plotting import format_table
from repro.experiments.registry import available_schemes, make_controller
from repro.sim.engine import run_recovery


def main() -> None:
    config = ScenarioConfig(
        columns=12,
        rows=12,
        communication_range=10.0,
        deployed_count=900,
        spare_surplus=80,
        seed=11,
    )
    base_state = build_scenario_state(config)
    print(
        f"scenario: {config.columns}x{config.rows} grid, "
        f"{base_state.enabled_count} enabled nodes, "
        f"{base_state.hole_count} holes, {base_state.spare_count} spares"
    )
    print()

    rows = []
    for scheme in available_schemes():
        state = base_state.clone()
        controller = make_controller(scheme, state)
        result = run_recovery(
            state,
            controller,
            derive_rng(config.seed, f"{scheme}-controller"),
            max_rounds=400,
        )
        metrics = result.metrics
        rows.append(
            [
                scheme,
                metrics.rounds,
                metrics.processes_initiated,
                f"{metrics.success_rate:.0%}",
                metrics.total_moves,
                round(metrics.total_distance, 1),
                metrics.final_holes,
            ]
        )

    print(
        format_table(
            [
                "scheme",
                "rounds",
                "processes",
                "success",
                "moves",
                "distance_m",
                "holes_left",
            ],
            rows,
        )
    )
    print()
    print(
        "Expected reading (matches the paper's qualitative claims):\n"
        "  * SR uses one process per hole and the fewest movements;\n"
        "  * AR initiates several processes per hole and moves more nodes;\n"
        "  * VF eventually covers the holes but needs many small movements\n"
        "    and far more rounds (slow convergence);\n"
        "  * SMART rebalances the entire grid, paying a large movement bill\n"
        "    for the same coverage guarantee."
    )


if __name__ == "__main__":
    main()
