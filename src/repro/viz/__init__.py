"""Terminal-friendly visualisation of grids, cycles, and occupancy."""

from repro.viz.ascii_grid import (
    render_cycle,
    render_dual_paths,
    render_occupancy,
    render_roles,
)

__all__ = [
    "render_occupancy",
    "render_cycle",
    "render_dual_paths",
    "render_roles",
]
