"""Run orchestration: declarative run specs, pure execution, pluggable executors.

The paper's whole evaluation (Figures 6-8) is one embarrassingly parallel
sweep: every scheme runs on identical scenario builds across a range of spare
counts ``N`` and seeds.  This module decouples *describing* such a cell from
*executing* it:

* :class:`RunSpec` — a frozen, picklable description of one simulation run
  (scenario config + scheme name + controller seed + engine knobs).  Equal
  specs describe byte-identical runs, which is what makes result caching and
  cross-process execution sound.
* :func:`execute_run` — the pure entry point ``RunSpec -> RunRecord``.  It is
  a top-level function so :class:`ParallelExecutor` can ship it to worker
  processes.
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  strategies for executing a batch of specs.  Both return records in spec
  order, so identical seeds give identical results regardless of worker
  count.
* :func:`execute_many` — the one entry point the sweep layer uses: consult an
  optional cache, execute only the missing specs, persist fresh records.

Determinism contract: everything stochastic inside a run is derived from
``spec.scenario.seed`` (deployment + thinning) and ``spec.seed`` (controller
stream) via :func:`repro.sim.rng.derive_rng`, so ``execute_run`` is a pure
function of its spec.
"""

from __future__ import annotations

import dataclasses
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.experiments.registry import (
    BUILTIN_FACTORIES,
    SCHEME_REGISTRY,
    SchemeFactory,
    make_controller,
)
from repro.network.channel import DEFAULT_CHANNEL, ChannelModel
from repro.network.energy import EnergyModel
from repro.network.failures import FailureEvent, compile_failure_schedule
from repro.network.state import WsnState
from repro.sim.engine import DEFAULT_IDLE_ROUND_LIMIT, RoundBasedEngine
from repro.sim.sharded import ShardedEngine
from repro.sim.metrics import RunMetrics
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.persistence import RunCache


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one simulation run.

    Attributes
    ----------
    scenario:
        The deployment to build (including its deployment/thinning seed).
    scheme:
        Name of the recovery scheme, resolved through the scheme registry.
    seed:
        Seed of the controller random stream (movement targets,
        tie-breaking).  The sweep runner uses the trial seed here so the
        controller stream changes together with the scenario across trials.
    max_rounds:
        Optional hard bound on simulation rounds (``None``: engine default).
    idle_round_limit:
        Consecutive no-progress rounds before the engine declares a stall.
    energy:
        Optional :class:`~repro.network.energy.EnergyModel` the engine applies
        every round (idle drain + engine-driven depletion).  Frozen, so the
        spec stays hashable and picklable.
    run_to_exhaustion:
        Run-until-network-death mode for lifetime workloads (only meaningful
        together with an energy model whose idle drain is positive).
    failures:
        Declarative failure schedule: frozen
        :class:`~repro.network.failures.FailureEvent` entries the engine
        applies at the start of their round (dynamic holes).  Events are
        data, not controller objects, so the spec stays hashable, picklable,
        and cache-addressable; :func:`execute_run` compiles them with
        :func:`~repro.network.failures.compile_failure_schedule`.
    channel:
        The :class:`~repro.network.channel.ChannelModel` carrying the run's
        control-message traffic.  ``None`` means the default perfect
        one-round channel (the paper's assumption).  The channel's random
        stream is derived from ``seed`` with its own label, so loss patterns
        change per trial without perturbing the controller stream.
    shards:
        Number of worker tiles for sharded execution (``1``: the plain
        sequential engine).  Sharded runs are byte-identical to sequential
        ones, so this is an *execution* option, not part of the run's
        identity: it is excluded from spec equality/hashing and therefore
        from the run-cache key — a record cached at one shard count
        satisfies every other.
    shard_mode:
        ``"fork"`` (worker processes) or ``"inline"`` (tiles stepped
        in-process); execution-only, like ``shards``.
    """

    scenario: ScenarioConfig
    scheme: str
    seed: int
    max_rounds: Optional[int] = None
    idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT
    energy: Optional[EnergyModel] = None
    run_to_exhaustion: bool = False
    failures: Tuple[FailureEvent, ...] = ()
    channel: Optional[ChannelModel] = None
    shards: int = dataclasses.field(default=1, compare=False)
    shard_mode: str = dataclasses.field(default="fork", compare=False)

    def __post_init__(self) -> None:
        """Normalise an explicit default channel to ``None``.

        ``--channel perfect`` and an omitted channel describe byte-identical
        runs; folding them onto one canonical form keeps spec equality — and
        therefore the run-cache key — semantic rather than syntactic.
        """
        if self.channel == DEFAULT_CHANNEL:
            object.__setattr__(self, "channel", None)

    def controller_rng_label(self) -> str:
        """Label of the controller random stream (kept stable for reproducibility)."""
        return f"{self.scheme}-controller"


@dataclass(frozen=True)
class RunRecord:
    """The outcome of executing one :class:`RunSpec`."""

    spec: RunSpec
    metrics: RunMetrics
    rounds_executed: int
    stalled: bool
    #: Whether the run hit its round bound before finishing (a bound-hit run
    #: with holes left is also reported as stalled).
    exhausted: bool = False
    #: Per-round total remaining energy of the enabled nodes; empty unless the
    #: spec carried an energy model.
    energy_series: Tuple[float, ...] = ()
    cached: bool = False

    @property
    def converged(self) -> bool:
        """Whether the run ended with complete coverage (no holes left)."""
        return self.metrics.coverage_restored


def execute_run(spec: RunSpec, _state: Optional[WsnState] = None) -> RunRecord:
    """Build the scenario, run the scheme, and return the resulting record.

    This is the single choke point every sweep cell goes through — serial,
    parallel, and cached execution all bottom out here.  It must stay a pure,
    top-level function: :class:`ParallelExecutor` pickles ``(execute_run,
    spec)`` pairs to worker processes.

    ``_state`` is an internal optimisation hook for serial execution: a
    caller that already built ``spec.scenario`` may pass a private clone of
    the resulting state to skip the (deterministic, hence equivalent)
    rebuild.  The clone is mutated in place.
    """
    state = build_scenario_state(spec.scenario) if _state is None else _state
    controller = make_controller(spec.scheme, state)
    rng = derive_rng(spec.seed, spec.controller_rng_label())
    engine_kwargs = dict(
        max_rounds=spec.max_rounds,
        failure_schedule=compile_failure_schedule(spec.failures) or None,
        idle_round_limit=spec.idle_round_limit,
        energy_model=spec.energy,
        run_to_exhaustion=spec.run_to_exhaustion,
        channel=spec.channel if spec.channel is not None else DEFAULT_CHANNEL,
        channel_seed=spec.seed,
    )
    if spec.shards > 1:
        def _sequential_rerun() -> RoundBasedEngine:
            # The abort fallback re-executes the spec from scratch: fresh
            # deployment, fresh controller, fresh rng stream — exactly what
            # a shards=1 execute_run would build.
            fresh_state = build_scenario_state(spec.scenario)
            return RoundBasedEngine(
                fresh_state,
                make_controller(spec.scheme, fresh_state),
                derive_rng(spec.seed, spec.controller_rng_label()),
                **engine_kwargs,
            )

        engine: RoundBasedEngine = ShardedEngine(
            state,
            controller,
            rng,
            shards=spec.shards,
            mode=spec.shard_mode,
            sequential_factory=_sequential_rerun,
            **engine_kwargs,
        )
    else:
        engine = RoundBasedEngine(state, controller, rng, **engine_kwargs)
    result = engine.run()
    return RunRecord(
        spec=spec,
        metrics=result.metrics,
        rounds_executed=result.rounds_executed,
        stalled=result.stalled,
        exhausted=result.exhausted,
        energy_series=tuple(result.series.energy),
    )


# ------------------------------------------------------------------ executors
def _run_serially(specs: Sequence[RunSpec]) -> List[RunRecord]:
    """Execute specs in order, building each distinct scenario only once.

    Consecutive specs that share a scenario config (the sweep emits one run
    per scheme with schemes innermost) get private clones of one base state
    instead of rebuilding the deployment from scratch — the build is
    deterministic, so a clone and a rebuild are interchangeable.
    """
    records: List[RunRecord] = []
    base_scenario = None
    base_state: Optional[WsnState] = None
    for spec in specs:
        if base_state is None or spec.scenario != base_scenario:
            base_scenario = spec.scenario
            base_state = build_scenario_state(base_scenario)
        records.append(execute_run(spec, _state=base_state.clone()))
    return records


def _registry_overrides() -> Dict[str, SchemeFactory]:
    """Registrations added or replaced since import that can be pickled.

    Worker processes re-import the registry and therefore only know the
    built-in schemes; anything registered afterwards (and any built-in
    shadowed with ``replace=True``) must be shipped along.  Factories that
    cannot be pickled (lambdas, closures) are skipped — resolving them in a
    worker raises the registry's usual unknown-scheme error.
    """
    overrides: Dict[str, SchemeFactory] = {}
    for name, factory in SCHEME_REGISTRY.items():
        if BUILTIN_FACTORIES.get(name) is factory:
            continue
        try:
            pickle.dumps(factory)
        except Exception:
            continue
        overrides[name] = factory
    return overrides


def _install_registry_overrides(overrides: Dict[str, SchemeFactory]) -> None:
    """Worker-process initializer: replay post-import registrations."""
    SCHEME_REGISTRY.update(overrides)


class RunExecutor(ABC):
    """Strategy interface for executing a batch of run specs.

    Implementations must return one record per spec **in spec order** and
    keep :attr:`runs_executed` up to date (the cache tests rely on it to
    assert that a warm cache causes zero re-executions).
    """

    def __init__(self) -> None:
        #: Total number of specs this executor has actually simulated.
        self.runs_executed = 0

    @abstractmethod
    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec and return their records in spec order."""


class SerialExecutor(RunExecutor):
    """Execute specs one after another in the current process."""

    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec in order in the current process."""
        records = _run_serially(specs)
        self.runs_executed += len(records)
        return records


class ParallelExecutor(RunExecutor):
    """Execute specs across worker processes with deterministic ordering.

    ``ProcessPoolExecutor.map`` preserves input order, so the records come
    back exactly as :class:`SerialExecutor` would produce them; only
    wall-clock time changes with ``jobs``.  Specs and records cross the
    process boundary, controllers and network states never do.
    """

    def __init__(self, jobs: int) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute the specs across worker processes; records in spec order."""
        specs = list(specs)
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            records = _run_serially(specs)
        else:
            workers = min(self.jobs, len(specs))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_install_registry_overrides,
                initargs=(_registry_overrides(),),
            ) as pool:
                records = list(pool.map(execute_run, specs))
        self.runs_executed += len(records)
        return records


def make_executor(jobs: Optional[int] = None) -> RunExecutor:
    """Executor for ``jobs`` worker processes (``None`` or 1: serial)."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)


# ---------------------------------------------------------------- entry point
def execute_many(
    specs: Sequence[RunSpec],
    executor: Optional[RunExecutor] = None,
    cache: "Optional[RunCache]" = None,
    broker: "Optional[object]" = None,
) -> List[RunRecord]:
    """Execute a batch of specs, reusing cached records where available.

    Records are returned in spec order.  This is a thin wrapper over the
    broker layer (:mod:`repro.experiments.broker`): identical specs within
    the batch are simulated once (``execute_run`` is deterministic, so the
    shared record is what each duplicate would have produced), specs with a
    stored record are answered from the cache with ``record.cached`` set,
    and only the remaining unique misses are simulated through ``executor``
    and persisted before returning.

    Pass ``broker`` (an :class:`~repro.experiments.broker.ExperimentBroker`)
    to route the batch through a long-running broker instead — its cache,
    in-flight dedup, and worker pool then apply across concurrent callers,
    not just within this batch; ``executor``/``cache`` are ignored because
    the broker owns its own.
    """
    from repro.experiments.broker import Priority, execute_batch

    if broker is not None:
        return broker.run(list(specs), priority=Priority.BATCH)
    return execute_batch(specs, executor=executor, cache=cache)
