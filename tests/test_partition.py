"""Property tests for the column-band partitioner behind the sharded engine."""

from __future__ import annotations

import math

import pytest

from repro.grid.virtual_grid import VirtualGrid, cell_side_for_range
from repro.network.partition import (
    Tile,
    feasible_shards,
    halo_columns,
    partition_columns,
)


def _grid(columns: int, rows: int = 4) -> VirtualGrid:
    return VirtualGrid(columns, rows, cell_side_for_range(10.0))


class TestHaloColumns:
    def test_default_radio_range_gives_three_columns(self):
        # R = sqrt(5) * r, so R / r = sqrt(5) ~ 2.236 -> 3 columns.
        assert halo_columns(_grid(16)) == 3

    def test_exact_multiple_does_not_round_up(self):
        grid = _grid(16)
        assert halo_columns(grid, radio_range=2 * grid.cell_size) == 2

    def test_tiny_range_clamps_to_one_column(self):
        assert halo_columns(_grid(16), radio_range=0.01) == 1

    def test_non_positive_range_rejected(self):
        with pytest.raises(ValueError, match="radio_range"):
            halo_columns(_grid(16), radio_range=0.0)


class TestFeasibleShards:
    def test_clamps_to_halo_wide_bands(self):
        # 16 columns / 3-column halo -> at most 5 tiles.
        assert feasible_shards(_grid(16), 8) == 5

    def test_requested_count_kept_when_feasible(self):
        assert feasible_shards(_grid(16), 4) == 4

    def test_narrow_grid_falls_back_to_one(self):
        # A 2-column grid cannot host even one halo-wide pair of tiles.
        assert feasible_shards(_grid(2), 4) == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            feasible_shards(_grid(16), 0)


class TestPartitionColumns:
    @pytest.mark.parametrize("columns", [6, 7, 13, 16, 31, 64])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_every_column_owned_exactly_once_in_order(self, columns, shards):
        grid = _grid(columns)
        tiles = partition_columns(grid, shards)
        owned = [x for tile in tiles for x in range(tile.x_start, tile.x_stop)]
        assert owned == list(range(columns))
        assert [tile.index for tile in tiles] == list(range(len(tiles)))

    @pytest.mark.parametrize("columns,shards", [(13, 4), (31, 8), (7, 3)])
    def test_uneven_grids_balance_within_one_column(self, columns, shards):
        widths = [tile.width for tile in partition_columns(_grid(columns), shards)]
        assert max(widths) - min(widths) <= 1
        # The remainder lands on the leftmost tiles.
        assert widths == sorted(widths, reverse=True)

    @pytest.mark.parametrize("columns", [6, 16, 64])
    def test_halo_clamped_to_grid(self, columns):
        grid = _grid(columns)
        halo = halo_columns(grid)
        for tile in partition_columns(grid, 4):
            assert 0 <= tile.halo_start <= tile.x_start
            assert tile.x_stop <= tile.halo_stop <= columns
            if tile.x_start > 0:
                assert tile.x_start - tile.halo_start == min(halo, tile.x_start)
            if tile.x_stop < columns:
                assert tile.halo_stop - tile.x_stop == min(halo, columns - tile.x_stop)

    @pytest.mark.parametrize("columns,shards", [(16, 4), (16, 8), (64, 16), (7, 2)])
    def test_owned_bands_at_least_halo_wide_when_sharded(self, columns, shards):
        grid = _grid(columns)
        tiles = partition_columns(grid, shards)
        if len(tiles) >= 2:
            halo = halo_columns(grid)
            assert all(tile.width >= halo for tile in tiles)

    def test_infeasible_request_falls_back_not_fails(self):
        # 4 columns with a 3-column halo: 2 tiles would be 2 wide — unsound —
        # so the partitioner degrades to a single tile.
        tiles = partition_columns(_grid(4), 2)
        assert len(tiles) == 1
        assert tiles[0] == Tile(index=0, x_start=0, x_stop=4, halo_start=0, halo_stop=4)

    def test_single_tile_degenerates_to_whole_grid(self):
        grid = _grid(16)
        (tile,) = partition_columns(grid, 1)
        assert (tile.x_start, tile.x_stop) == (0, 16)
        assert (tile.halo_start, tile.halo_stop) == (0, 16)

    def test_deterministic(self):
        grid = _grid(31)
        assert partition_columns(grid, 5) == partition_columns(grid, 5)

    def test_custom_radio_range_widens_halo(self):
        grid = _grid(32)
        wide = partition_columns(grid, 2, radio_range=5 * grid.cell_size)
        assert wide[0].halo_stop - wide[0].x_stop == 5

    def test_ownership_and_coverage_predicates(self):
        grid = _grid(16)
        tiles = partition_columns(grid, 4)
        halo = halo_columns(grid)
        for tile in tiles:
            for x in range(16):
                assert tile.owns_column(x) == (tile.x_start <= x < tile.x_stop)
                assert tile.covers_column(x) == (tile.halo_start <= x < tile.halo_stop)
        # Coverage width never exceeds owned width + two halos.
        for tile in tiles:
            assert tile.halo_stop - tile.halo_start <= tile.width + 2 * halo

    def test_halo_width_matches_radio_range_ceiling(self):
        grid = _grid(16)
        for factor in (0.5, 1.0, 1.5, 2.0, 2.9):
            radio_range = factor * grid.cell_size
            expected = max(1, math.ceil(factor - 1e-9))
            assert halo_columns(grid, radio_range=radio_range) == expected
