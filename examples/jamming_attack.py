#!/usr/bin/env python3
"""Scenario: a jamming attack blows a region-sized hole into the coverage.

Section 1 of the paper motivates the hole problem with attacks that deplete
node density in certain areas (jamming).  This example deploys a healthy
16x12 network, lets an attacker jam a disk in the middle of the surveillance
area, and then compares how the SR scheme and the AR baseline restore
coverage — including a second, dynamic attack injected while the first
recovery is still running.

Run with ``python examples/jamming_attack.py``.
"""

from __future__ import annotations

from repro import (
    HamiltonReplacementController,
    LocalizedReplacementController,
    Point,
    RegionJammingFailure,
    ScenarioConfig,
    build_hamilton_cycle,
    build_scenario_state,
    derive_rng,
    is_head_network_connected,
)
from repro.sim.engine import RoundBasedEngine
from repro.sim.events import EventKind, EventLog
from repro.viz.ascii_grid import render_occupancy


def build_network(seed: int):
    """A 16x12 grid with a comfortable spare surplus before the attack."""
    config = ScenarioConfig(
        columns=16,
        rows=12,
        communication_range=10.0,
        deployed_count=1200,
        spare_surplus=160,
        seed=seed,
    )
    return config, build_scenario_state(config)


def jammed_disk(state) -> RegionJammingFailure:
    """A jammer parked in the middle of the surveillance area."""
    bounds = state.grid.bounds
    center = Point(bounds.center.x, bounds.center.y)
    return RegionJammingFailure(center=center, radius=2.5 * state.grid.cell_size)


def run_scheme(name: str, seed: int) -> None:
    config, state = build_network(seed)
    print(f"--- {name} ---")
    print(f"pre-attack holes: {state.hole_count}, spares: {state.spare_count}")

    # First attack happens before the controller starts; the second one is
    # scheduled mid-recovery to exercise the dynamic-hole behaviour.
    jammed_disk(state).apply(state, derive_rng(seed, "attack-1"))
    print(f"holes after jamming attack: {state.hole_count}")
    print(render_occupancy(state))

    if name == "SR":
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
    else:
        controller = LocalizedReplacementController(state.grid)

    second_wave = RegionJammingFailure(
        center=Point(state.grid.cell_size * 2.0, state.grid.cell_size * 2.0),
        radius=1.5 * state.grid.cell_size,
    )
    log = EventLog()
    engine = RoundBasedEngine(
        state,
        controller,
        derive_rng(seed, f"{name}-controller"),
        failure_schedule={5: second_wave},
        event_log=log,
    )
    result = engine.run()
    metrics = result.metrics

    print(f"rounds                : {metrics.rounds}")
    print(f"processes initiated   : {metrics.processes_initiated}")
    print(f"success rate          : {metrics.success_rate:.1%}")
    print(f"total movements       : {metrics.total_moves}")
    print(f"total moving distance : {metrics.total_distance:.1f} m")
    print(f"holes remaining       : {metrics.final_holes}")
    print(f"head overlay connected: {is_head_network_connected(state)}")
    print(f"trace events recorded : {len(log)} "
          f"(moves: {log.count(EventKind.NODE_MOVED)}, "
          f"failures injected: {log.count(EventKind.NODE_DISABLED)})")
    print(render_occupancy(state))
    print()


def main() -> None:
    seed = 2024
    for scheme in ("SR", "AR"):
        run_scheme(scheme, seed)
    print(
        "SR repairs the jammed region with one replacement process per hole and\n"
        "restores complete coverage; AR floods the same holes with redundant\n"
        "processes and can leave cells uncovered when its localized cascades\n"
        "dead-end inside the jammed area."
    )


if __name__ == "__main__":
    main()
