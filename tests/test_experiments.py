"""Unit tests for the experiments package (results, sweeps, figure drivers)."""

import pytest

from repro.experiments.figures import (
    QUICK_SPARE_VALUES,
    figure1_hamilton_layout,
    figure3_expected_movements,
    figure4_dual_path_layout,
    figure5_distance_estimates,
    figure6_processes_and_success,
    figure7_node_movements,
    figure8_total_distance,
    run_section5_experiment,
)
from repro.experiments.plotting import ascii_chart, format_table
from repro.experiments.results import ExperimentResult, average_dicts
from repro.experiments.sweep import make_controller, run_comparison
from repro.sim.scenario import ScenarioConfig, build_scenario_state


class TestExperimentResult:
    def test_add_row_validates_columns(self):
        result = ExperimentResult(name="t", columns=["a", "b"])
        result.add_row(a=1, b=2)
        with pytest.raises(KeyError):
            result.add_row(a=1, c=3)
        assert len(result) == 1

    def test_column_and_series(self):
        result = ExperimentResult(name="t", columns=["x", "y"])
        result.add_row(x=1, y=10.0)
        result.add_row(x=2, y=None)
        result.add_row(x=3, y=30.0)
        assert result.column("x") == [1, 2, 3]
        assert result.series("x", "y") == [(1.0, 10.0), (3.0, 30.0)]
        with pytest.raises(KeyError):
            result.column("z")

    def test_to_csv(self, tmp_path):
        result = ExperimentResult(name="t", columns=["x", "y"])
        result.add_row(x=1, y=2.5)
        path = result.to_csv(tmp_path / "sub" / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2.5"

    def test_format_contains_all_columns(self):
        result = ExperimentResult(name="table", columns=["x", "value"], description="demo")
        result.add_row(x=1, value=3.14159)
        text = result.format(float_digits=2)
        assert "table" in text and "demo" in text
        assert "3.14" in text

    def test_format_limits_rows(self):
        result = ExperimentResult(name="t", columns=["x"])
        for i in range(10):
            result.add_row(x=i)
        text = result.format(max_rows=3)
        assert "more rows" in text

    def test_average_dicts(self):
        merged = average_dicts([{"a": 1.0, "s": "SR"}, {"a": 3.0, "s": "SR"}])
        assert merged["a"] == pytest.approx(2.0)
        assert merged["s"] == "SR"
        with pytest.raises(ValueError):
            average_dicts([])
        with pytest.raises(ValueError):
            average_dicts([{"a": 1}, {"b": 2}])


class TestPlotting:
    def test_ascii_chart_renders_all_series(self):
        chart = ascii_chart(
            {"SR": [(0, 1.0), (10, 2.0)], "AR": [(0, 3.0), (10, 1.0)]},
            width=30,
            height=8,
            title="demo chart",
        )
        assert "demo chart" in chart
        assert "SR" in chart and "AR" in chart
        assert "x" in chart.splitlines()[-1] or "legend" in chart.splitlines()[-1]

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({}, title="empty")

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "2.50" in text
        assert text.splitlines()[0].strip().startswith("a")


class TestAnalyticalFigures:
    def test_figure1_layout(self):
        layout = figure1_hamilton_layout(4, 5)
        assert "4x5" in layout
        assert "L = 19" in layout

    def test_figure3_rows_cover_both_grids(self):
        result = figure3_expected_movements(small_spares=[0, 20], large_spares=[0, 200])
        grids = {row["grid"] for row in result.rows}
        assert grids == {"4x5", "16x16"}
        assert len(result) == 4

    def test_figure4_layout_mentions_special_cells(self):
        layout = figure4_dual_path_layout()
        for label in ("A =", "B =", "C =", "D ="):
            assert label in layout

    def test_figure5_uses_given_cell_size(self):
        result = figure5_distance_estimates(cell_size=10.0, small_spares=[0], large_spares=[0])
        by_grid = {row["grid"]: row for row in result.rows}
        assert by_grid["4x5"]["expected_distance"] == pytest.approx(1.08 * 10 * 19)
        assert by_grid["16x16"]["expected_distance"] == pytest.approx(1.08 * 10 * 255)


class TestSweep:
    @pytest.fixture(scope="class")
    def quick_config(self):
        return ScenarioConfig(columns=8, rows=8, deployed_count=400, seed=5)

    @pytest.fixture(scope="class")
    def quick_experiment(self, quick_config):
        return run_section5_experiment(
            spare_values=[10, 60], config=quick_config, trials=1
        )

    def test_make_controller_unknown_scheme(self, quick_config):
        state = build_scenario_state(quick_config.with_spare_surplus(10))
        with pytest.raises(KeyError):
            make_controller("NOPE", state)

    def test_run_comparison_validates_arguments(self, quick_config):
        with pytest.raises(ValueError):
            run_comparison(quick_config, [10], trials=0)
        with pytest.raises(KeyError):
            run_comparison(quick_config, [10], schemes=("SR", "NOPE"))

    def test_comparison_rows_and_columns(self, quick_experiment):
        assert len(quick_experiment) == 2
        for column in ("N", "holes", "SR_moves", "AR_moves", "SR_moves_analytic"):
            assert column in quick_experiment.columns

    def test_sr_beats_ar_on_processes(self, quick_experiment):
        for row in quick_experiment.rows:
            if row["holes"] == 0:
                continue
            assert row["SR_processes"] <= row["AR_processes"]
            assert row["SR_success_rate"] == pytest.approx(1.0)

    def test_figure_views_share_experiment(self, quick_experiment):
        fig6 = figure6_processes_and_success(quick_experiment)
        fig7 = figure7_node_movements(quick_experiment)
        fig8 = figure8_total_distance(quick_experiment)
        assert len(fig6) == len(fig7) == len(fig8) == len(quick_experiment)
        assert fig6.column("N") == fig7.column("N") == fig8.column("N")
        for row in fig6.rows:
            assert 0.0 <= row["AR_success_pct"] <= 100.0
        for row in fig8.rows:
            assert row["SR_distance"] >= 0.0

    def test_trials_are_averaged(self, quick_config):
        result = run_comparison(quick_config, [40], schemes=("SR",), trials=2)
        assert len(result) == 1
        row = result.rows[0]
        assert row["SR_success_rate"] == pytest.approx(1.0)

    def test_quick_spare_values_are_sane(self):
        assert QUICK_SPARE_VALUES == sorted(QUICK_SPARE_VALUES)
        assert all(n >= 0 for n in QUICK_SPARE_VALUES)
