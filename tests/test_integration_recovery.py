"""Integration tests: full scenarios exercising deployment, failures, recovery,
coverage, and connectivity together — the end-to-end claims of the paper."""

import pytest

from repro.core import analysis
from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.connectivity import is_head_network_connected
from repro.grid.coverage import coverage_report
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord
from repro.network.failures import RegionJammingFailure, TargetedCellFailure
from repro.sim.engine import RoundBasedEngine, run_recovery
from repro.sim.events import EventKind, EventLog
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state


def build(columns=12, rows=12, deployed=900, surplus=60, seed=21, **kwargs):
    config = ScenarioConfig(
        columns=columns,
        rows=rows,
        deployed_count=deployed,
        spare_surplus=surplus,
        seed=seed,
        **kwargs,
    )
    return config, build_scenario_state(config)


class TestPaperWorkloadEndToEnd:
    def test_sr_restores_complete_coverage_and_connectivity(self):
        config, state = build()
        assert state.hole_count > 0, "the thinned scenario must contain holes"
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        result = run_recovery(state, controller, derive_rng(config.seed, "sr"))

        assert result.converged
        report = coverage_report(state)
        assert report.is_complete
        assert is_head_network_connected(state)
        assert result.metrics.success_rate == 1.0
        assert result.metrics.processes_initiated == result.metrics.initial_holes
        state.check_invariants()

    def test_sr_movement_cost_tracks_theorem2(self):
        """Measured movements per hole stay close to the analytical expectation."""
        config, state = build(columns=16, rows=16, deployed=2000, surplus=150, seed=33)
        cycle = build_hamilton_cycle(state.grid)
        controller = HamiltonReplacementController(cycle)
        holes = state.hole_count
        result = run_recovery(state, controller, derive_rng(config.seed, "sr"))
        assert result.metrics.final_holes == 0

        measured = result.metrics.total_moves / holes
        # The experimental spare pool is holes + N, so bracket the prediction
        # between the two corresponding Theorem-2 evaluations.
        optimistic = analysis.expected_movements(
            state.spare_count + holes, cycle.replacement_path_length
        )
        pessimistic = analysis.expected_movements(
            config.spare_surplus, cycle.replacement_path_length
        )
        assert optimistic * 0.5 <= measured <= pessimistic * 2.0

    def test_sr_versus_ar_headline_comparison(self):
        """SR: fewer processes, 100% success; AR: redundant processes, possible failures."""
        # A comfortably dense regime (well past the paper's N ~ 55 crossover),
        # where SR is cheaper than AR on every metric.
        config, base_state = build(surplus=150, seed=44)
        sr_state, ar_state = base_state.clone(), base_state.clone()

        sr = HamiltonReplacementController(build_hamilton_cycle(sr_state.grid))
        ar = LocalizedReplacementController(ar_state.grid)
        sr_result = run_recovery(sr_state, sr, derive_rng(config.seed, "sr"))
        ar_result = run_recovery(ar_state, ar, derive_rng(config.seed, "ar"))

        assert sr_result.metrics.processes_initiated < ar_result.metrics.processes_initiated
        assert sr_result.metrics.success_rate == 1.0
        assert sr_result.metrics.success_rate >= ar_result.metrics.success_rate
        assert sr_result.metrics.final_holes <= ar_result.metrics.final_holes
        # In this well-provisioned regime SR also moves fewer nodes.
        assert sr_result.metrics.total_moves <= ar_result.metrics.total_moves


class TestAttackScenarios:
    def test_jamming_attack_recovery(self):
        config, state = build(columns=10, rows=10, deployed=800, surplus=80, seed=5)
        jammer = RegionJammingFailure(
            center=Point(state.grid.bounds.center.x, state.grid.bounds.center.y),
            radius=2.0 * state.grid.cell_size,
        )
        jammer.apply(state, derive_rng(config.seed, "attack"))
        holes_after_attack = state.hole_count
        assert holes_after_attack >= 4

        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        result = run_recovery(state, controller, derive_rng(config.seed, "sr"))
        assert result.metrics.final_holes == 0
        assert is_head_network_connected(state)

    def test_dynamic_holes_injected_mid_recovery(self):
        config, state = build(columns=8, rows=8, deployed=600, surplus=50, seed=6)
        log = EventLog()
        schedule = {
            3: TargetedCellFailure(cells=[GridCoord(0, 0), GridCoord(7, 7)]),
            6: TargetedCellFailure(cells=[GridCoord(4, 4)]),
        }
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        engine = RoundBasedEngine(
            state,
            controller,
            derive_rng(config.seed, "sr"),
            failure_schedule=schedule,
            event_log=log,
        )
        result = engine.run()
        assert result.metrics.final_holes == 0
        assert log.count(EventKind.NODE_DISABLED) > 0
        # Holes created later become fresh processes, all of which converge.
        assert result.metrics.success_rate == 1.0

    def test_repeated_recovery_waves(self):
        """The controller can be reused across waves of failures (dynamic network)."""
        config, state = build(columns=8, rows=8, deployed=700, surplus=60, seed=8)
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        total_moves_previous = 0
        for wave in range(3):
            TargetedCellFailure(cells=[GridCoord(wave, wave)]).apply(
                state, derive_rng(config.seed, f"wave-{wave}")
            )
            result = run_recovery(state, controller, derive_rng(config.seed, f"sr-{wave}"))
            assert result.metrics.final_holes == 0
            assert controller.total_moves >= total_moves_previous
            total_moves_previous = controller.total_moves
        state.check_invariants()


class TestHeadPolicies:
    @pytest.mark.parametrize("policy", ["lowest_id", "highest_energy", "nearest_to_center"])
    def test_recovery_under_every_policy(self, policy):
        config, state = build(columns=8, rows=8, deployed=500, surplus=40, seed=9, head_policy=policy)
        controller = HamiltonReplacementController(build_hamilton_cycle(state.grid))
        result = run_recovery(state, controller, derive_rng(config.seed, policy))
        assert result.metrics.final_holes == 0
        state.check_invariants()
