"""Sharded execution: byte-identity, eligibility, caching, and tile replicas.

The headline contract of :class:`~repro.sim.sharded.ShardedEngine` is that a
sharded run is *byte-identical* to the sequential one — same metrics, series,
move records, and message traffic — so shard count is an execution option,
never part of a run's identity.  The golden suite here re-runs every catalog
scenario (smoke variant) at 2/4/8 shards against the sequential record; the
cache test pins the corollary that sharded and unsharded specs share cache
entries without a ``CACHE_FORMAT_VERSION`` bump.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from helpers import make_hole
from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.experiments.catalog import catalog_names, load_catalog_scenario
from repro.experiments.orchestration import SerialExecutor, execute_many, execute_run
from repro.experiments.persistence import CACHE_FORMAT_VERSION, RunCache
from repro.experiments.registry import make_controller
from repro.grid.geometry import Point
from repro.grid.virtual_grid import GridCoord, VirtualGrid, cell_side_for_range
from repro.network.channel import DEFAULT_CHANNEL, parse_channel_spec
from repro.network.deployment import deploy_per_cell
from repro.network.energy import EnergyModel
from repro.network.state import WsnState
from repro.sim.engine import RoundBasedEngine
from repro.sim.rng import derive_rng
from repro.sim.sharded import ShardedEngine

SHARD_COUNTS = (2, 4, 8)


def _state(columns: int = 16, rows: int = 16, per_cell: int = 2, seed: int = 7) -> WsnState:
    grid = VirtualGrid(columns, rows, cell_side_for_range(10.0))
    return WsnState(grid, deploy_per_cell(grid, per_cell, random.Random(seed)))


def _engine(state=None, controller=None, shards: int = 4, **kwargs) -> ShardedEngine:
    state = state if state is not None else _state()
    controller = controller if controller is not None else make_controller("SR", state)
    kwargs.setdefault("channel", DEFAULT_CHANNEL)
    kwargs.setdefault("mode", "inline")
    return ShardedEngine(state, controller, derive_rng(1, "test"), shards=shards, **kwargs)


# --------------------------------------------------------------- golden suite
class TestCatalogByteIdentity:
    """Every catalog scenario, sharded at 2/4/8, against the sequential record."""

    @pytest.mark.parametrize("name", sorted(catalog_names()))
    def test_sharded_records_equal_sequential(self, name):
        scenario = load_catalog_scenario(name).smoke_variant()
        for spec in scenario.run_specs():
            reference = execute_run(spec)
            for shards in SHARD_COUNTS:
                sharded_spec = dataclasses.replace(
                    spec, shards=shards, shard_mode="inline"
                )
                record = execute_run(sharded_spec)
                assert record == reference, (
                    f"{name}/{spec.scheme} diverged at {shards} shards"
                )

    def test_fork_backend_matches_inline(self):
        # One end-to-end check through real worker processes; determinism is
        # backend-independent, so one scenario suffices (CI also exercises
        # fork via `scenario run --shards`).
        spec = load_catalog_scenario("paper-16x16").smoke_variant().run_specs()[0]
        reference = execute_run(spec)
        forked = execute_run(dataclasses.replace(spec, shards=2, shard_mode="fork"))
        assert forked == reference


# ------------------------------------------------------------------ run cache
class TestShardsNeverEnterTheCacheKey:
    def test_cache_format_version_unchanged(self):
        # Sharding must not perturb stored records; a version bump here means
        # the execution option leaked into the persisted format.  (v5 came
        # from the message-ledger metrics fields, not from sharding.)
        assert CACHE_FORMAT_VERSION == 5

    def test_sharded_spec_hits_unsharded_cache_entry(self, tmp_path):
        spec = load_catalog_scenario("corner-holes").smoke_variant().run_specs()[0]
        cache = RunCache(tmp_path)
        (first,) = execute_many([spec], executor=SerialExecutor(), cache=cache)
        assert not first.cached

        sharded_spec = dataclasses.replace(spec, shards=4, shard_mode="inline")
        assert sharded_spec == spec
        assert hash(sharded_spec) == hash(spec)
        executor = SerialExecutor()
        (second,) = execute_many([sharded_spec], executor=executor, cache=cache)
        assert executor.runs_executed == 0
        assert second.cached
        assert second.metrics == first.metrics


# ---------------------------------------------------------------- eligibility
class TestEligibility:
    def test_default_sr_run_is_eligible(self):
        engine = _engine()
        assert engine.ineligible_reason is None
        assert engine.shards_effective == 4

    def test_requested_count_clamped_to_feasible(self):
        # 16 columns / 3-column halo -> at most 5 tiles.
        assert _engine(shards=8).shards_effective == 5

    def test_one_shard_requested(self):
        engine = _engine(shards=1)
        assert engine.ineligible_reason == "one shard requested"
        assert engine.shards_effective == 1

    def test_narrow_grid_cannot_shard(self):
        engine = _engine(state=_state(columns=4, rows=4), shards=2)
        assert "halo-wide tiles" in engine.ineligible_reason

    def test_other_controllers_fall_back(self):
        state = _state()
        engine = _engine(state=state, controller=make_controller("AR", state))
        assert "not plain SR" in engine.ineligible_reason

    def test_random_spare_selection_falls_back(self):
        state = _state()
        controller = HamiltonReplacementController(
            build_hamilton_cycle(state.grid), spare_selection="random"
        )
        assert "random spare selection" in _engine(state=state, controller=controller).ineligible_reason

    def test_partial_activation_falls_back(self):
        state = _state()
        controller = HamiltonReplacementController(
            build_hamilton_cycle(state.grid), activation_probability=0.5
        )
        assert "activation_probability" in _engine(state=state, controller=controller).ineligible_reason

    def test_energy_model_falls_back(self):
        engine = _engine(energy_model=EnergyModel(idle_cost_per_round=0.1))
        assert "energy model" in engine.ineligible_reason

    def test_non_default_channel_falls_back(self):
        engine = _engine(channel=parse_channel_spec("lossy:0.5"))
        assert "perfect channel" in engine.ineligible_reason

    def test_legacy_no_channel_falls_back(self):
        assert "no-channel" in _engine(channel=None).ineligible_reason

    def test_unsafe_failure_model_falls_back(self):
        class _UnsafeFailure:
            shard_safe = False

            def apply(self, state, rng):
                return []

        engine = _engine(failure_schedule={3: _UnsafeFailure()})
        assert "not shard-safe" in engine.ineligible_reason

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            _engine(shards=0)
        with pytest.raises(ValueError, match="mode"):
            _engine(mode="threads")

    def test_ineligible_engine_still_runs_sequentially(self):
        state = _state(columns=4, rows=4)
        make_hole(state, GridCoord(1, 1))
        twin = _state(columns=4, rows=4)
        make_hole(twin, GridCoord(1, 1))
        sequential = RoundBasedEngine(
            twin, make_controller("SR", twin), derive_rng(1, "test"), channel=DEFAULT_CHANNEL
        ).run()
        engine = _engine(state=state, shards=2)
        assert engine.ineligible_reason is not None
        assert engine.run() == sequential


# ------------------------------------------------------- identity + telemetry
class TestShardedRoundLoop:
    def _paired(self, shards: int):
        def build():
            state = _state(seed=11)
            for coord in (GridCoord(2, 3), GridCoord(9, 9), GridCoord(15, 0)):
                make_hole(state, coord)
            return state

        seq_state = build()
        sequential = RoundBasedEngine(
            seq_state,
            make_controller("SR", seq_state),
            derive_rng(5, "paired"),
            channel=DEFAULT_CHANNEL,
        ).run()
        shard_state = build()
        engine = ShardedEngine(
            shard_state,
            make_controller("SR", shard_state),
            derive_rng(5, "paired"),
            shards=shards,
            mode="inline",
            channel=DEFAULT_CHANNEL,
        )
        return sequential, engine.run(), engine

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_initial_holes_recovered_identically(self, shards):
        sequential, sharded, engine = self._paired(shards)
        assert engine.ineligible_reason is None
        assert sharded == sequential
        assert sharded.metrics.final_holes == 0

    def test_timing_telemetry_populated(self):
        _, _, engine = self._paired(2)
        timing = engine.timing
        assert timing["rounds"] > 0
        assert timing["decide_seconds"] > 0
        assert timing["critical_seconds"] > 0
        # The critical path can never exceed what a serial replay would pay.
        serial_total = (
            timing["tile_run_sum"]
            + timing["tile_apply_sum"]
            + timing["decide_seconds"]
            + timing["bookkeep_seconds"]
        )
        assert timing["critical_seconds"] <= serial_total + 1e-9

    def test_final_state_matches_sequential(self):
        import numpy as np

        def build():
            state = _state(seed=13)
            make_hole(state, GridCoord(7, 7))
            return state

        seq_state = build()
        RoundBasedEngine(
            seq_state,
            make_controller("SR", seq_state),
            derive_rng(2, "state"),
            channel=DEFAULT_CHANNEL,
        ).run()
        shard_state = build()
        ShardedEngine(
            shard_state,
            make_controller("SR", shard_state),
            derive_rng(2, "state"),
            shards=4,
            mode="inline",
            channel=DEFAULT_CHANNEL,
        ).run()
        shard_state.check_invariants()
        for field in ("positions", "energy", "state", "cell", "moved_distance", "move_count"):
            assert np.array_equal(
                getattr(seq_state.arrays, field), getattr(shard_state.arrays, field)
            ), f"arrays.{field} diverged after the final merge"
        assert seq_state._heads == shard_state._heads


# -------------------------------------------------------------- tile replicas
class TestTileReplicaHelpers:
    @pytest.fixture
    def band_state(self) -> WsnState:
        return _state(columns=8, rows=4, per_cell=2, seed=3)

    def test_extract_masks_everything_outside_coverage(self, band_state):
        twin = band_state.extract_column_band(0, 5)
        for node in band_state.nodes():
            coord = band_state.cell_of_node(node.node_id)
            assert twin.is_masked(node.node_id) == (coord.x >= 5)
        # Visible rows carry identical data; heads are inherited only inside.
        assert twin.band_enabled_count(0, 5) == band_state.band_enabled_count(0, 5)
        for coord, head in twin._heads.items():
            if coord.x < 5:
                assert head == band_state._heads[coord]
            else:
                assert head is None

    def test_invalid_band_rejected(self, band_state):
        with pytest.raises(ValueError, match="column band"):
            band_state.extract_column_band(5, 3)

    def test_evict_admit_roundtrip(self, band_state):
        twin = band_state.extract_column_band(0, 8)
        coord = GridCoord(2, 1)
        node = band_state.members_of(coord)[0]
        row = twin.arrays.row_of(node.node_id)
        fields = (
            Point(float(twin.arrays.positions[row, 0]), float(twin.arrays.positions[row, 1])),
            float(twin.arrays.energy[row]),
            float(twin.arrays.moved_distance[row]),
            int(twin.arrays.move_count[row]),
        )
        assert twin.evict_node(node.node_id) == coord
        assert twin.is_masked(node.node_id)
        assert node.node_id not in [m.node_id for m in twin.members_of(coord)]
        twin.admit_node(node.node_id, coord, *fields)
        assert not twin.is_masked(node.node_id)
        assert node.node_id in [m.node_id for m in twin.members_of(coord)]
        twin.check_invariants()

    def test_masked_and_enabled_rows_reject_the_wrong_operation(self, band_state):
        twin = band_state.extract_column_band(0, 4)
        outside = band_state.members_of(GridCoord(6, 0))[0]
        with pytest.raises(RuntimeError, match="not enabled"):
            twin.evict_node(outside.node_id)
        inside = twin.members_of(GridCoord(1, 1))[0]
        with pytest.raises(RuntimeError, match="not masked"):
            twin.admit_node(inside.node_id, GridCoord(1, 1), Point(0, 0), 1.0, 0.0, 0)

    def test_authoritative_move_requires_vacant_target(self, band_state):
        twin = band_state.extract_column_band(0, 8)
        target = GridCoord(4, 2)
        make_hole(twin, target)
        mover = twin.members_of(GridCoord(3, 2))[0]
        center = twin.grid.cell_center(target)
        source = twin.apply_authoritative_move(
            mover.node_id, target, center, 5.0, 2.5, 1
        )
        assert source == GridCoord(3, 2)
        assert twin._heads[target] == mover.node_id
        assert twin.cell_of_node(mover.node_id) == target
        # A second arrival into the now-occupied cell must be refused.
        other = twin.members_of(GridCoord(3, 2))[0]
        with pytest.raises(RuntimeError, match="occupied"):
            twin.apply_authoritative_move(other.node_id, target, center, 5.0, 2.5, 1)

    def test_band_exports_partition_the_population(self, band_state):
        import numpy as np

        left = band_state.extract_column_band(0, 7)   # owned [0, 4) + halo
        right = band_state.extract_column_band(1, 8)  # owned [4, 8) + halo
        left_rows = left.export_band_rows(0, 4)["rows"]
        right_rows = right.export_band_rows(4, 8)["rows"]
        combined = np.concatenate([left_rows, right_rows])
        assert len(np.unique(combined)) == len(combined) == len(band_state.arrays)

        # Adopting both payloads onto a scrambled clone restores the arrays.
        clone = band_state.clone()
        clone.arrays.energy[:] = -1.0
        clone.apply_row_export(left.export_band_rows(0, 4))
        clone.apply_row_export(right.export_band_rows(4, 8))
        clone._rebuild_indices_from_arrays()
        clone.elect_all_heads()
        assert np.array_equal(clone.arrays.energy, band_state.arrays.energy)
        clone.check_invariants()
