"""Property tests for the vectorized and incremental adjacency layers.

Two oracles anchor this suite:

* :func:`build_edges` is compared against an O(N^2) brute-force scan using
  the exact historical in-range predicate, over randomized deployments; and
* :class:`NeighborIndex` is driven through long seeded random
  move/disable/enable sequences with :meth:`~NeighborIndex.check_consistency`
  (a from-scratch rebuild comparison) asserted after every mutation, plus
  ``WsnState.check_invariants`` which chains to it when an index is attached.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.adjacency import (
    RANGE_SLACK_SQ,
    NeighborIndex,
    adjacency_lists,
    build_edges,
)
from repro.network.deployment import deploy_uniform
from repro.network.radio import UnitDiskRadio
from repro.network.state import WsnState

#: Seeded random deployments checked against the brute-force oracle.
EDGE_SEQUENCE_COUNT = 40
#: Seeded mutation sequences driven through the incremental index.
INDEX_SEQUENCE_COUNT = 60
#: Mutations per incremental-index sequence.
OPERATIONS_PER_SEQUENCE = 25

COMMUNICATION_RANGE = 3.0


def brute_force_edges(xs, ys, communication_range):
    """All in-range unordered pairs by direct O(N^2) comparison."""
    limit_sq = communication_range * communication_range + RANGE_SLACK_SQ
    pairs = set()
    for a in range(len(xs)):
        for b in range(a + 1, len(xs)):
            dx = xs[a] - xs[b]
            dy = ys[a] - ys[b]
            if dx * dx + dy * dy <= limit_sq:
                pairs.add((a, b))
    return pairs


@pytest.mark.parametrize("seed", range(EDGE_SEQUENCE_COUNT))
def test_build_edges_matches_brute_force(seed):
    """The bucketed vectorized edge list equals the O(N^2) ground truth."""
    rng = random.Random(seed)
    count = rng.randint(0, 60)
    side = rng.uniform(4.0, 20.0)
    xs = np.array([rng.uniform(0.0, side) for _ in range(count)])
    ys = np.array([rng.uniform(0.0, side) for _ in range(count)])
    left, right = build_edges(xs, ys, COMMUNICATION_RANGE)
    produced = {tuple(sorted(pair)) for pair in zip(left.tolist(), right.tolist())}
    assert len(produced) == len(left), "duplicate edges produced"
    assert produced == brute_force_edges(xs, ys, COMMUNICATION_RANGE)


def test_build_edges_chunking_is_transparent():
    """Tiny chunk sizes produce the same edge set as one big batch."""
    rng = random.Random(7)
    xs = np.array([rng.uniform(0.0, 12.0) for _ in range(80)])
    ys = np.array([rng.uniform(0.0, 12.0) for _ in range(80)])
    left_a, right_a = build_edges(xs, ys, COMMUNICATION_RANGE)
    left_b, right_b = build_edges(xs, ys, COMMUNICATION_RANGE, chunk_pairs=16)
    as_set = lambda L, R: {tuple(sorted(p)) for p in zip(L.tolist(), R.tolist())}  # noqa: E731
    assert as_set(left_a, right_a) == as_set(left_b, right_b)


def test_adjacency_lists_covers_every_id_sorted():
    """Every input id gets an entry and neighbour lists are sorted by id."""
    ids = np.array([30, 10, 20], dtype=np.int64)
    # positions: rows 0-1 linked, row 2 isolated
    left = np.array([0], dtype=np.int64)
    right = np.array([1], dtype=np.int64)
    lists = adjacency_lists(ids, left, right)
    assert lists == {30: [10], 10: [30], 20: []}


def test_adjacency_lists_matches_radio_object_path():
    """The array path and the object path produce identical dicts."""
    rng = random.Random(11)
    grid = VirtualGrid(columns=4, rows=4, cell_size=1.5)
    nodes = deploy_uniform(grid, 40, rng)
    state = WsnState(grid, nodes)
    radio = UnitDiskRadio(communication_range=COMMUNICATION_RANGE)
    assert radio.adjacency_of_state(state) == radio.adjacency(state.enabled_nodes())


# --------------------------------------------------------- incremental index
def _random_state(rng: random.Random) -> WsnState:
    grid = VirtualGrid(columns=4, rows=4, cell_size=1.0)
    arrays = deploy_uniform(grid, rng.randint(8, 30), rng, as_arrays=True)
    return WsnState(grid, arrays)


def _apply_random_operation(state: WsnState, rng: random.Random) -> None:
    """One random disable / enable / move, skipping impossible choices."""
    operation = rng.random()
    enabled = state.enabled_node_ids()
    if operation < 0.3:
        if enabled:
            state.disable_node(rng.choice(enabled))
    elif operation < 0.5:
        disabled = state.disabled_nodes()
        if disabled:
            state.enable_node(rng.choice(disabled).node_id)
    elif enabled:
        node_id = rng.choice(enabled)
        source = state.cell_of_node(node_id)
        if operation < 0.85:
            state.move_node(node_id, rng.choice(state.grid.neighbours(source)), rng)
        else:
            target = GridCoord(
                rng.randrange(state.grid.columns), rng.randrange(state.grid.rows)
            )
            state.move_node(node_id, target, rng, enforce_adjacent=False)


@pytest.mark.parametrize("seed", range(INDEX_SEQUENCE_COUNT))
def test_incremental_index_never_drifts(seed):
    """After every mutation the incremental index equals a full rebuild."""
    rng = random.Random(seed)
    state = _random_state(rng)
    radio = UnitDiskRadio(communication_range=COMMUNICATION_RANGE)
    index = state.attach_neighbor_index(radio)
    index.check_consistency()
    for _ in range(OPERATIONS_PER_SEQUENCE):
        _apply_random_operation(state, rng)
        index.check_consistency()
    # check_invariants chains to the index oracle when one is attached.
    state.check_invariants()


@pytest.mark.parametrize("seed", range(0, INDEX_SEQUENCE_COUNT, 6))
def test_index_queries_match_batch_adjacency(seed):
    """neighbours_of/as_dict agree with the batch radio adjacency."""
    rng = random.Random(seed)
    state = _random_state(rng)
    radio = UnitDiskRadio(communication_range=COMMUNICATION_RANGE)
    index = state.attach_neighbor_index(radio)
    for _ in range(12):
        _apply_random_operation(state, rng)
    expected = radio.adjacency_of_state(state)
    assert index.as_dict() == expected
    for node_id, neighbours in expected.items():
        assert index.neighbours_of(node_id) == neighbours
        assert index.degree(node_id) == len(neighbours)
    assert index.edge_count() == sum(len(n) for n in expected.values()) // 2


def test_detach_stops_maintenance():
    """After detaching, mutations no longer touch the index."""
    rng = random.Random(3)
    state = _random_state(rng)
    radio = UnitDiskRadio(communication_range=COMMUNICATION_RANGE)
    state.attach_neighbor_index(radio)
    assert state.neighbor_index is not None
    state.detach_neighbor_index()
    assert state.neighbor_index is None
    _apply_random_operation(state, rng)
    state.check_invariants()  # no index attached: plain state oracle only


def test_corrupted_index_is_detected():
    """check_consistency raises when a neighbour set is tampered with."""
    rng = random.Random(5)
    state = _random_state(rng)
    radio = UnitDiskRadio(communication_range=COMMUNICATION_RANGE)
    index = state.attach_neighbor_index(radio)
    rows = np.flatnonzero(state.arrays.enabled_mask())
    # Fabricate an edge between the first two enabled rows only on one side.
    a = int(rows[0])
    b = int(rows[1])
    neighbours = index._neighbours[a]
    if b in set(neighbours.tolist()):
        index._neighbours[a] = neighbours[neighbours != b]
    else:
        index._neighbours[a] = np.sort(np.append(neighbours, b))
    with pytest.raises(AssertionError):
        index.check_consistency()
