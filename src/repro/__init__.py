"""repro — reproduction of "Mobility Control for Complete Coverage in WSNs".

This package reproduces the system and the evaluation of

    Zhen Jiang, Jie Wu, Robert Kline, Jennifer Krantz.
    "Mobility Control for Complete Coverage in Wireless Sensor Networks."
    ICDCS 2008 Workshops, pp. 291-296.

Quick tour of the public API
----------------------------

* :class:`repro.VirtualGrid` / :class:`repro.WsnState` — the virtual-grid
  substrate and the mutable network state (nodes, heads, spares, holes).
* :func:`repro.build_hamilton_cycle` — directed Hamilton cycle over the grid
  (serpentine, or the dual-path construction for odd-by-odd grids).
* :class:`repro.HamiltonReplacementController` — the paper's SR scheme.
* :class:`repro.LocalizedReplacementController` — the AR baseline.
* :class:`repro.RoundBasedEngine` / :func:`repro.run_recovery` — the
  round-based simulation engine.
* :class:`repro.ScenarioConfig` / :func:`repro.build_scenario_state` — the
  paper's experimental workload (uniform deployment, thinning to ``N + m*n``
  enabled nodes).
* :class:`repro.Scenario` / :func:`repro.load_scenario` — declarative
  scenario files (TOML/JSON documents compiling into cached run specs) and
  the curated catalog under :mod:`repro.experiments.catalog`.
* :mod:`repro.core.analysis` — Theorem 2 / Corollary 2 analytical model.
* :mod:`repro.experiments` — drivers that regenerate every figure of the
  paper's evaluation.

See ``examples/quickstart.py`` for a five-minute end-to-end walk-through.
"""

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import (
    GridCoord,
    VirtualGrid,
    cell_side_for_range,
    required_range_for_cell,
)
from repro.grid.coverage import coverage_report
from repro.grid.connectivity import is_head_network_connected
from repro.network.node import NodeRole, NodeState, SensorNode
from repro.network.radio import UnitDiskRadio
from repro.network.state import WsnState
from repro.network.deployment import deploy_per_cell, deploy_uniform
from repro.network.failures import (
    FailureEvent,
    RandomFailure,
    RegionJammingFailure,
    TargetedCellFailure,
    ThinningToEnabledCount,
)
from repro.network.channel import ChannelModel, build_channel, parse_channel_spec
from repro.experiments.catalog import load_catalog_scenario
from repro.experiments.scenario_files import Scenario, dump_scenario, load_scenario
from repro.core.hamilton import (
    DualPathHamiltonCycle,
    HamiltonCycle,
    SerpentineHamiltonCycle,
    build_hamilton_cycle,
)
from repro.core.replacement import HamiltonReplacementController
from repro.core.shortcut import ShortcutReplacementController
from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.protocol import MobilityController, ReplacementProcess, RoundOutcome
from repro.core import analysis
from repro.sim.engine import RoundBasedEngine, SimulationResult, run_recovery
from repro.sim.scenario import ScenarioConfig, build_scenario_state
from repro.sim.metrics import RunMetrics
from repro.sim.events import EventLog
from repro.sim.rng import derive_rng

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BoundingBox",
    "Point",
    "GridCoord",
    "VirtualGrid",
    "cell_side_for_range",
    "required_range_for_cell",
    "coverage_report",
    "is_head_network_connected",
    "NodeRole",
    "NodeState",
    "SensorNode",
    "UnitDiskRadio",
    "WsnState",
    "deploy_uniform",
    "deploy_per_cell",
    "FailureEvent",
    "RandomFailure",
    "RegionJammingFailure",
    "TargetedCellFailure",
    "ThinningToEnabledCount",
    "ChannelModel",
    "build_channel",
    "parse_channel_spec",
    "Scenario",
    "load_scenario",
    "dump_scenario",
    "load_catalog_scenario",
    "HamiltonCycle",
    "SerpentineHamiltonCycle",
    "DualPathHamiltonCycle",
    "build_hamilton_cycle",
    "HamiltonReplacementController",
    "ShortcutReplacementController",
    "LocalizedReplacementController",
    "MobilityController",
    "ReplacementProcess",
    "RoundOutcome",
    "analysis",
    "RoundBasedEngine",
    "SimulationResult",
    "run_recovery",
    "ScenarioConfig",
    "build_scenario_state",
    "RunMetrics",
    "EventLog",
    "derive_rng",
]
