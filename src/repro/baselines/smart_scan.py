"""SMART-style scan-based balancing (extension baseline).

SMART (Wu & Yang, INFOCOM 2005) balances the number of sensors per virtual
grid cell with two sweeps: first every *row* of the grid is balanced by
shifting nodes between adjacent cells, then every *column*.  After both
sweeps each cell holds either ``floor(avg)`` or ``ceil(avg)`` nodes, so
whenever the network has at least as many nodes as cells every cell ends up
covered.  The paper's criticism (Section 1) is that this "requires node
adjustments in the entire grid network, causing many unnecessary node
movements just for providing the coverage for a single hole" — this
controller reproduces that behaviour so the extended benchmarks can measure
it.

The balancing plan is computed from prefix sums (the classic token
redistribution argument): along a line of cells with counts ``c_1..c_k`` and
targets ``w_1..w_k``, the number of nodes that must cross the boundary
between cell ``i`` and ``i+1`` equals ``t_i = sum_{j<=i} (c_j - w_j)``
(positive values flow forwards, negative backwards).  The controller executes
that plan one cell-hop per node per round, which yields both the move count
and the moving distance of the scheme.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.protocol import MobilityController, RoundOutcome
from repro.grid.virtual_grid import GridCoord
from repro.network.state import WsnState


class SmartScanController(MobilityController):
    """Row-then-column scan balancing of per-cell node counts."""

    name = "SMART"

    def __init__(self) -> None:
        super().__init__()
        self._hole_process: Dict[GridCoord, int] = {}
        self._phase = "rows"  # rows -> columns -> done
        self._all_moves: List = []

    # ------------------------------------------------------------------ round
    def execute_round(
        self, state: WsnState, rng: random.Random, round_index: int
    ) -> RoundOutcome:
        """Run one balancing round: advance the row phase, then the column phase."""
        outcome = RoundOutcome(round_index=round_index)
        self._open_processes(state, round_index, outcome)

        transfers = self._phase_transfers(state)
        if not transfers and self._phase == "rows":
            self._phase = "columns"
            transfers = self._phase_transfers(state)
        if not transfers and self._phase == "columns":
            self._phase = "done"

        for source, target in transfers:
            mover = self._pick_mover(state, source, target)
            if mover is None:
                continue
            record = state.move_node(
                mover, target, rng, round_index=round_index, process_id=None
            )
            outcome.moves.append(record)
            self._all_moves.append(record)
            # Attribute the move to the process of the hole being filled, when
            # the destination is (or was) one of the tracked holes.
            process_id = self._hole_process.get(target)
            if process_id is not None and self._processes[process_id].is_active:
                self._processes[process_id].record_move(record)

        self._close_processes(state, round_index, outcome)
        return outcome

    def is_quiescent(self, state: WsnState) -> bool:
        """Whether both balancing phases finished and no process is active."""
        return self._phase == "done" and super().is_quiescent(state)

    # ------------------------------------------------------------------ plans
    def _phase_transfers(self, state: WsnState) -> List[tuple]:
        """One round's worth of adjacent-cell transfers for the current phase."""
        grid = state.grid
        transfers: List[tuple] = []
        if self._phase == "rows":
            lines = [grid.row(y) for y in range(grid.rows)]
        elif self._phase == "columns":
            lines = [grid.column(x) for x in range(grid.columns)]
        else:
            return transfers
        for line in lines:
            transfers.extend(self._line_transfers(state, line))
        return transfers

    @staticmethod
    def _line_transfers(state: WsnState, line: List[GridCoord]) -> List[tuple]:
        """Boundary flows for one row/column, limited to one node per boundary per round.

        Balancing is inherently a whole-line computation, but each per-cell
        count is an O(1) read of the occupancy index.
        """
        counts = [state.member_count(coord) for coord in line]
        total = sum(counts)
        k = len(line)
        base, remainder = divmod(total, k)
        # Cells at the end of the line take the extra nodes, as in SMART's
        # "give the remainder to the highest-indexed groups" convention.
        targets = [base + (1 if index >= k - remainder else 0) for index in range(k)]
        transfers: List[tuple] = []
        running = 0
        for index in range(k - 1):
            running += counts[index] - targets[index]
            if running > 0 and counts[index] > 0:
                transfers.append((line[index], line[index + 1]))
            elif running < 0 and counts[index + 1] > 0:
                transfers.append((line[index + 1], line[index]))
        return transfers

    @staticmethod
    def _pick_mover(state: WsnState, source: GridCoord, target: GridCoord) -> Optional[int]:
        """Prefer moving a usable spare; fall back to the head otherwise.

        Battery-depleted nodes cannot move and are never picked — so the head
        also moves when every remaining spare in the cell is depleted, not
        only when it is literally the last node.
        """
        candidates = [
            node for node in state.spares_of(source) if not node.is_battery_depleted
        ]
        if not candidates:
            head = state.head_of(source)
            if head is None or head.is_battery_depleted:
                return None
            candidates = [head]
        target_center = state.grid.cell_center(target)
        chosen = min(
            candidates,
            key=lambda node: (node.position.distance_to(target_center), node.node_id),
        )
        return chosen.node_id

    # -------------------------------------------------------------- processes
    def _open_processes(
        self, state: WsnState, round_index: int, outcome: RoundOutcome
    ) -> None:
        for hole in state.vacant_cells():
            if hole in self._hole_process:
                continue
            process = self._start_process(
                origin_cell=hole, initiator_cell=hole, round_index=round_index
            )
            self._hole_process[hole] = process.process_id
            outcome.processes_started.append(process.process_id)

    def _close_processes(
        self, state: WsnState, round_index: int, outcome: RoundOutcome
    ) -> None:
        for hole, process_id in list(self._hole_process.items()):
            process = self._processes[process_id]
            if process.is_active and not state.is_vacant(hole):
                process.mark_converged(round_index)
                outcome.processes_converged.append(process_id)
                del self._hole_process[hole]

    def finalize(self, state: WsnState, round_index: int) -> None:
        """Mark any still-active processes as failed at the end of the run."""
        for process in self._processes.values():
            if process.is_active:
                process.mark_failed(round_index)

    # ------------------------------------------------------------- accounting
    # Balancing moves the whole network around, so — unlike SR/AR — the cost
    # metrics must count every transfer, not only the ones that end in a hole.
    @property
    def total_moves(self) -> int:
        """Total number of node transfers performed (every balancing move counts)."""
        return len(self._all_moves)

    @property
    def total_distance(self) -> float:
        """Total distance (metres) moved across all balancing transfers."""
        return sum(record.distance for record in self._all_moves)

    def movement_records(self) -> List:
        """All balancing transfers performed so far."""
        return list(self._all_moves)
