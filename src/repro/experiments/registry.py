"""Scheme registry: one place that maps scheme names to controller factories.

Historically the sweep runner hard-coded its scheme list in a module-level
``SCHEME_FACTORIES`` dict, which meant extensions (new baselines, ablation
variants) had to edit ``sweep.py`` to become sweepable.  This module replaces
that dict with a small registry:

* :func:`register_scheme` adds a factory under a name (extensions call this
  at import time, exactly like the built-in schemes below);
* :func:`get_scheme` resolves a name to its factory;
* :func:`available_schemes` lists everything currently registered;
* :func:`make_controller` instantiates a controller for a concrete network.

The registry is what makes :class:`~repro.experiments.orchestration.RunSpec`
picklable: a spec carries only the scheme *name*, and the worker process
resolves it through its own copy of the registry, so controller objects never
cross process boundaries.
"""

from __future__ import annotations

import hashlib
import types
from typing import Callable, Dict, Tuple

from repro.baselines.smart_scan import SmartScanController
from repro.baselines.virtual_force import VirtualForceController
from repro.core.baseline_ar import LocalizedReplacementController
from repro.core.hamilton import build_hamilton_cycle
from repro.core.protocol import MobilityController
from repro.core.shortcut import ShortcutReplacementController
from repro.core.replacement import HamiltonReplacementController
from repro.network.state import WsnState

#: A factory takes the network state and returns a fresh controller bound to
#: its grid.  Factories must be importable (module-level callables) if their
#: scheme is to be run by the parallel executor.
SchemeFactory = Callable[[WsnState], MobilityController]

#: The registry itself.  ``repro.experiments.sweep.SCHEME_FACTORIES`` aliases
#: this dict for backwards compatibility; mutate it only through the
#: functions below.
SCHEME_REGISTRY: Dict[str, SchemeFactory] = {}


def register_scheme(name: str, factory: SchemeFactory, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` so sweeps and the CLI can run it.

    Raises :class:`ValueError` if the name is already taken, unless
    ``replace=True`` (useful for tests and for shadowing a built-in with a
    tuned variant).
    """
    if not name:
        raise ValueError("scheme name must be non-empty")
    if name in SCHEME_REGISTRY and not replace:
        raise ValueError(
            f"scheme {name!r} is already registered; pass replace=True to override"
        )
    SCHEME_REGISTRY[name] = factory


def unregister_scheme(name: str) -> None:
    """Remove a scheme from the registry (raises KeyError if absent)."""
    if name not in SCHEME_REGISTRY:
        raise KeyError(f"unknown scheme {name!r}; available: {list(available_schemes())}")
    del SCHEME_REGISTRY[name]


def get_scheme(name: str) -> SchemeFactory:
    """Resolve a scheme name to its controller factory."""
    try:
        return SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {list(available_schemes())}"
        ) from None


def available_schemes() -> Tuple[str, ...]:
    """All registered scheme names, sorted."""
    return tuple(sorted(SCHEME_REGISTRY))


def make_controller(scheme: str, state: WsnState) -> MobilityController:
    """Instantiate a controller by scheme name for the given network."""
    return get_scheme(scheme)(state)


# ----------------------------------------------------------------- built-ins
def _sr_factory(state: WsnState) -> MobilityController:
    return HamiltonReplacementController(build_hamilton_cycle(state.grid))


def _sr_shortcut_factory(state: WsnState) -> MobilityController:
    return ShortcutReplacementController(build_hamilton_cycle(state.grid))


def _ar_factory(state: WsnState) -> MobilityController:
    return LocalizedReplacementController(state.grid)


def _sr_energy_factory(state: WsnState) -> MobilityController:
    """SR with the energy-aware (fullest battery first) spare selection."""
    return HamiltonReplacementController(
        build_hamilton_cycle(state.grid), spare_selection="max_energy"
    )


def _ar_energy_factory(state: WsnState) -> MobilityController:
    """AR with the energy-aware (fullest battery first) spare selection."""
    return LocalizedReplacementController(state.grid, spare_selection="max_energy")


def _vf_factory(state: WsnState) -> MobilityController:
    return VirtualForceController()


def _smart_factory(state: WsnState) -> MobilityController:
    return SmartScanController()


register_scheme("SR", _sr_factory)
register_scheme("SR-shortcut", _sr_shortcut_factory)
register_scheme("SR-energy", _sr_energy_factory)
register_scheme("AR", _ar_factory)
register_scheme("AR-energy", _ar_energy_factory)
register_scheme("VF", _vf_factory)
register_scheme("SMART", _smart_factory)

#: Snapshot of the registrations every process gets at import time.  The
#: parallel executor uses it to work out which registrations it must ship to
#: worker processes (anything added or replaced after import), and the cache
#: uses factory identity to avoid serving records simulated by a factory
#: that has since been shadowed.
BUILTIN_FACTORIES: Dict[str, SchemeFactory] = dict(SCHEME_REGISTRY)


def factory_identity(name: str) -> str:
    """Stable identity of a scheme's factory, folded into cache keys.

    Shadowing a scheme via ``register_scheme(..., replace=True)`` changes the
    identity, so cached records simulated by the previous factory become
    misses instead of being served as the new scheme's results.  Because two
    different lambdas share one ``__qualname__``, the identity also covers a
    hash of the function's compiled code (bytecode, names, constants);
    factories that differ only in closed-over *values* still collide — use
    distinct named factories for variants that matter.
    """
    factory = get_scheme(name)
    identity = f"{factory.__module__}.{factory.__qualname__}"
    code = getattr(factory, "__code__", None)
    if code is not None:
        fingerprint = repr(_code_fingerprint(code))
        digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]
        identity += f":{digest}"
    return identity


def _code_fingerprint(code: types.CodeType) -> tuple:
    """Deterministic, address-free summary of a code object (and nested ones)."""
    consts = tuple(
        _code_fingerprint(const) if isinstance(const, types.CodeType) else repr(const)
        for const in code.co_consts
    )
    return (code.co_code, code.co_names, consts)
