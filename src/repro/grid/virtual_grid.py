"""The virtual grid model (GAF partition) from Section 2 of the paper.

The surveillance area is divided into an ``n x m`` system of square cells of
side ``r``.  A cell is addressed by its relative location ``(x, y)`` with
``0 <= x <= n - 1`` and ``0 <= y <= m - 1`` exactly as in Figure 1(a) of the
paper.  Two cells are *neighbouring grids* when their addresses differ by one
in exactly one dimension; cells not on the edge therefore have four
neighbours (north, south, east, west).

With communication range ``R = sqrt(5) * r`` every enabled node can talk to
any node in a neighbouring cell, which is the property the grid-head overlay
relies on for connectivity (Xu & Heidemann, MOBICOM'01).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.grid.geometry import BoundingBox, Point

#: Ratio between the communication range and the cell side that guarantees
#: neighbouring-cell communication in the GAF model: ``R = sqrt(5) * r``.
GAF_RANGE_FACTOR = math.sqrt(5.0)

#: Ratio required to also reach *diagonal* neighbouring cells
#: (``R = 2 * sqrt(2) * r``); the paper explicitly does not require it.
DIAGONAL_RANGE_FACTOR = 2.0 * math.sqrt(2.0)


class GridCoord(NamedTuple):
    """Address of a cell in the virtual grid: ``(x, y)`` as in the paper.

    A named tuple rather than a (frozen) dataclass: coordinates are the hot
    dict/set key of every state index and of the sharded barrier protocol,
    and the C-level tuple hash/equality is several times faster than the
    generated dataclass ones.  Ordering, repr, and field access are
    unchanged; iteration and ``(x, y)`` equality come with the tuple.
    """

    x: int
    y: int

    def manhattan_distance_to(self, other: "GridCoord") -> int:
        """Grid (L1) distance to ``other`` in cells."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def is_neighbour_of(self, other: "GridCoord") -> bool:
        """Whether the two cells are neighbouring grids (share a full edge)."""
        return self.manhattan_distance_to(other) == 1

    def north(self) -> "GridCoord":
        """The neighbouring coordinate one cell up (+y)."""
        return GridCoord(self.x, self.y + 1)

    def south(self) -> "GridCoord":
        """The neighbouring coordinate one cell down (-y)."""
        return GridCoord(self.x, self.y - 1)

    def east(self) -> "GridCoord":
        """The neighbouring coordinate one cell right (+x)."""
        return GridCoord(self.x + 1, self.y)

    def west(self) -> "GridCoord":
        """The neighbouring coordinate one cell left (-x)."""
        return GridCoord(self.x - 1, self.y)

    def as_tuple(self) -> Tuple[int, int]:
        """The coordinate as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def cell_side_for_range(communication_range: float) -> float:
    """Cell side ``r`` for a given communication range ``R`` (``r = R / sqrt(5)``).

    This is the value the paper uses in its experiments: for ``R = 10 m`` the
    cells are ``4.4721 m x 4.4721 m``.
    """
    if communication_range <= 0:
        raise ValueError("communication_range must be positive")
    return communication_range / GAF_RANGE_FACTOR


def required_range_for_cell(cell_size: float) -> float:
    """Minimum communication range ``R`` for cell side ``r`` (``R = sqrt(5) * r``)."""
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    return GAF_RANGE_FACTOR * cell_size


class VirtualGrid:
    """An ``n x m`` virtual grid of square ``r x r`` cells.

    Parameters
    ----------
    columns:
        Number of cells along the X axis (``n`` in the paper).
    rows:
        Number of cells along the Y axis (``m`` in the paper).
    cell_size:
        Side length ``r`` of every cell, in metres.
    origin:
        World coordinates of the south-west corner of cell ``(0, 0)``.
    """

    def __init__(
        self,
        columns: int,
        rows: int,
        cell_size: float,
        origin: Point = Point(0.0, 0.0),
    ) -> None:
        if columns < 1 or rows < 1:
            raise ValueError(f"grid must be at least 1x1, got {columns}x{rows}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._columns = int(columns)
        self._rows = int(rows)
        self._cell_size = float(cell_size)
        self._origin = origin
        self._coord_cache: Optional[List[GridCoord]] = None

    # ------------------------------------------------------------------ shape
    @property
    def columns(self) -> int:
        """Number of cells along X (``n``)."""
        return self._columns

    @property
    def rows(self) -> int:
        """Number of cells along Y (``m``)."""
        return self._rows

    @property
    def cell_size(self) -> float:
        """Cell side ``r`` in metres."""
        return self._cell_size

    @property
    def origin(self) -> Point:
        """Lower-left corner of the grid area (metres)."""
        return self._origin

    @property
    def cell_count(self) -> int:
        """Total number of cells (``columns * rows``)."""
        return self._columns * self._rows

    @property
    def bounds(self) -> BoundingBox:
        """World-coordinate bounding box of the whole surveillance area."""
        return BoundingBox(
            self._origin.x,
            self._origin.y,
            self._origin.x + self._columns * self._cell_size,
            self._origin.y + self._rows * self._cell_size,
        )

    @property
    def required_communication_range(self) -> float:
        """``R = sqrt(5) * r`` — the range assumed by the paper's overlay."""
        return required_range_for_cell(self._cell_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VirtualGrid(columns={self._columns}, rows={self._rows}, "
            f"cell_size={self._cell_size})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VirtualGrid):
            return NotImplemented
        return (
            self._columns == other._columns
            and self._rows == other._rows
            and self._cell_size == other._cell_size
            and self._origin == other._origin
        )

    def __hash__(self) -> int:
        return hash((self._columns, self._rows, self._cell_size, self._origin))

    # ------------------------------------------------------------- membership
    def contains_coord(self, coord: GridCoord) -> bool:
        """Whether ``coord`` addresses a cell of this grid."""
        return 0 <= coord.x < self._columns and 0 <= coord.y < self._rows

    def validate_coord(self, coord: GridCoord) -> GridCoord:
        """Return ``coord`` unchanged, raising :class:`ValueError` if out of range."""
        if not self.contains_coord(coord):
            raise ValueError(
                f"cell {coord.as_tuple()} outside {self._columns}x{self._rows} grid"
            )
        return coord

    def is_edge_cell(self, coord: GridCoord) -> bool:
        """Whether the cell lies on the boundary of the grid system."""
        self.validate_coord(coord)
        return (
            coord.x == 0
            or coord.y == 0
            or coord.x == self._columns - 1
            or coord.y == self._rows - 1
        )

    def is_corner_cell(self, coord: GridCoord) -> bool:
        """Whether ``coord`` is one of the four grid corners."""
        self.validate_coord(coord)
        return coord.x in (0, self._columns - 1) and coord.y in (0, self._rows - 1)

    # ------------------------------------------------------------ enumeration
    def all_coords(self) -> Iterator[GridCoord]:
        """Iterate over every cell address in row-major order (y outer, x inner)."""
        for y in range(self._rows):
            for x in range(self._columns):
                yield GridCoord(x, y)

    def coord_list(self) -> List[GridCoord]:
        """All cell addresses in row-major order, cached.

        The list is indexable by the *flat cell index* (``y * columns + x``)
        used by the struct-of-arrays state, so ``coord_list()[flat]`` is the
        inverse of :meth:`flat_index`.
        """
        if self._coord_cache is None:
            self._coord_cache = list(self.all_coords())
        return self._coord_cache

    def flat_index(self, coord: GridCoord) -> int:
        """Flat row-major index of ``coord`` (``y * columns + x``)."""
        return coord.y * self._columns + coord.x

    def coord_at(self, flat_index: int) -> GridCoord:
        """The cell address for a flat row-major index (inverse of :meth:`flat_index`)."""
        return self.coord_list()[flat_index]

    def cell_indices(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of` over position arrays -> flat ``int32`` indices.

        Mirrors :meth:`cell_of` exactly (truncating division, then clamping
        boundary points into the last row/column) but does **not** re-check
        the surveillance-area bounds — callers validate positions first.
        """
        x = ((xs - self._origin.x) / self._cell_size).astype(np.int32)
        y = ((ys - self._origin.y) / self._cell_size).astype(np.int32)
        np.clip(x, 0, self._columns - 1, out=x)
        np.clip(y, 0, self._rows - 1, out=y)
        return y * np.int32(self._columns) + x

    def neighbours(self, coord: GridCoord) -> List[GridCoord]:
        """The 4-neighbourhood of ``coord`` restricted to cells inside the grid.

        Order is north, south, east, west (matching the paper's enumeration);
        edge cells simply have fewer neighbours.
        """
        self.validate_coord(coord)
        candidates = (coord.north(), coord.south(), coord.east(), coord.west())
        return [c for c in candidates if self.contains_coord(c)]

    def diagonal_neighbours(self, coord: GridCoord) -> List[GridCoord]:
        """The up-to-four diagonal neighbours (not used for monitoring by the paper)."""
        self.validate_coord(coord)
        candidates = (
            GridCoord(coord.x + 1, coord.y + 1),
            GridCoord(coord.x + 1, coord.y - 1),
            GridCoord(coord.x - 1, coord.y + 1),
            GridCoord(coord.x - 1, coord.y - 1),
        )
        return [c for c in candidates if self.contains_coord(c)]

    # ----------------------------------------------------- coordinate mapping
    def cell_of(self, point: Point) -> GridCoord:
        """The cell containing ``point``.

        Points exactly on the east/north boundary of the area are assigned to
        the last column/row so that deployments over the closed area never
        fall outside the grid.
        """
        if not self.bounds.contains(point, tolerance=1e-9):
            raise ValueError(f"point {point.as_tuple()} outside surveillance area")
        x = int((point.x - self._origin.x) / self._cell_size)
        y = int((point.y - self._origin.y) / self._cell_size)
        x = min(max(x, 0), self._columns - 1)
        y = min(max(y, 0), self._rows - 1)
        return GridCoord(x, y)

    def cell_bounds(self, coord: GridCoord) -> BoundingBox:
        """World-coordinate bounding box of cell ``coord``."""
        self.validate_coord(coord)
        min_x = self._origin.x + coord.x * self._cell_size
        min_y = self._origin.y + coord.y * self._cell_size
        return BoundingBox(min_x, min_y, min_x + self._cell_size, min_y + self._cell_size)

    def cell_center(self, coord: GridCoord) -> Point:
        """World-coordinate centre of cell ``coord``."""
        return self.cell_bounds(coord).center

    def central_area(self, coord: GridCoord) -> BoundingBox:
        """The central ``r/2 x r/2`` area of the cell.

        Replacement moves target a random point in this area (Section 4,
        "Implementation Issue"): the per-hop moving distance is then at least
        ``r/4``, at most ``sqrt(58)/4 * r`` and roughly ``1.08 * r`` on
        average.
        """
        return self.cell_bounds(coord).shrunk(self._cell_size / 4.0)

    def center_distance(self, a: GridCoord, b: GridCoord) -> float:
        """Euclidean distance between the centres of two cells."""
        return self.cell_center(a).distance_to(self.cell_center(b))

    # ------------------------------------------------------------- utilities
    def coords_in_box(self, box: BoundingBox) -> List[GridCoord]:
        """All cells whose area intersects ``box`` (used by region failures)."""
        result = []
        for coord in self.all_coords():
            if self.cell_bounds(coord).intersects(box):
                result.append(coord)
        return result

    def row(self, y: int) -> List[GridCoord]:
        """Cells of row ``y`` ordered by increasing ``x``."""
        if not 0 <= y < self._rows:
            raise ValueError(f"row {y} outside grid with {self._rows} rows")
        return [GridCoord(x, y) for x in range(self._columns)]

    def column(self, x: int) -> List[GridCoord]:
        """Cells of column ``x`` ordered by increasing ``y``."""
        if not 0 <= x < self._columns:
            raise ValueError(f"column {x} outside grid with {self._columns} columns")
        return [GridCoord(x, y) for y in range(self._rows)]

    @classmethod
    def for_area(
        cls,
        width: float,
        height: float,
        communication_range: float,
        origin: Point = Point(0.0, 0.0),
    ) -> "VirtualGrid":
        """Build the grid covering a ``width x height`` area for a given radio range.

        The cell side is ``r = R / sqrt(5)`` and the number of cells is the
        ceiling of the area dimensions divided by ``r``, so the grid always
        covers the whole requested area (the last row/column may extend past
        it, as in any practical deployment).
        """
        r = cell_side_for_range(communication_range)
        columns = max(1, math.ceil(width / r - 1e-9))
        rows = max(1, math.ceil(height / r - 1e-9))
        return cls(columns=columns, rows=rows, cell_size=r, origin=origin)


def random_point_in_box(box: BoundingBox, rng) -> Point:
    """Uniformly random point inside ``box`` drawn from ``rng`` (a ``random.Random``)."""
    return Point(
        box.min_x + rng.random() * box.width,
        box.min_y + rng.random() * box.height,
    )


def move_distance_bounds(cell_size: float) -> Tuple[float, float]:
    """(min, max) single-hop moving distance when targeting the central area.

    Matches the bounds stated in Section 4: minimum ``r/4`` (node sitting on
    the shared edge, target on the near edge of the central area) and maximum
    ``sqrt(58)/4 * r`` (node in the far corner, target in the far corner of
    the central area).
    """
    return cell_size / 4.0, math.sqrt(58.0) / 4.0 * cell_size


#: Average per-hop moving distance used by the paper's estimates (Section 4).
AVERAGE_MOVE_FACTOR = 1.08
