"""Structured event log for simulation traces.

The event log is optional — the engine and controllers work without it — but
recording events makes the examples and the debugging of distributed
behaviour much easier: every hole detection, replacement move, process
convergence, and failure injection shows up as a typed record with the round
in which it happened.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """Kinds of trace events emitted by the engine."""

    NODE_DISABLED = "node_disabled"
    HOLE_DETECTED = "hole_detected"
    PROCESS_STARTED = "process_started"
    NODE_MOVED = "node_moved"
    PROCESS_CONVERGED = "process_converged"
    PROCESS_FAILED = "process_failed"
    ROUND_COMPLETED = "round_completed"
    SIMULATION_FINISHED = "simulation_finished"


@dataclass(frozen=True)
class Event:
    """One trace record."""

    kind: EventKind
    round_index: int
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[round {self.round_index:4d}] {self.kind.value}: {payload}"


class EventLog:
    """Append-only list of :class:`Event` records with simple filtering."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(self, kind: EventKind, round_index: int, **details: object) -> Event:
        """Append one event to the log and return it."""
        event = Event(kind=kind, round_index=round_index, details=dict(details))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self, kind: Optional[EventKind] = None) -> List[Event]:
        """All events, optionally restricted to one kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for event in self._events if event.kind is kind)

    def rounds(self) -> List[int]:
        """Distinct round indices that produced at least one event."""
        return sorted({event.round_index for event in self._events})

    def to_lines(self) -> List[str]:
        """Human-readable rendering of the full trace."""
        return [str(event) for event in self._events]

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()
