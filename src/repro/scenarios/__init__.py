"""Packaged scenario files for the curated catalog.

This package holds the ``*.toml`` scenario documents shipped with the
library (one per curated workload).  They are data, not code: load them
through :mod:`repro.experiments.catalog`, which reads them via
:mod:`importlib.resources` so they work from a wheel as well as a checkout.
"""
