"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments where pip falls back to the legacy
``setup.py``-based editable install (e.g. offline machines without the
``wheel`` package available for PEP 660 builds).
"""

from setuptools import setup

setup()
