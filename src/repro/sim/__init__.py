"""Round-based simulation engine, scenarios, metrics, and event tracing."""

from repro.sim.rng import derive_rng, spawn_seeds
from repro.sim.events import Event, EventKind, EventLog
from repro.sim.scenario import ScenarioConfig, build_scenario_state
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.engine import RoundBasedEngine, SimulationResult, run_recovery

__all__ = [
    "derive_rng",
    "spawn_seeds",
    "Event",
    "EventKind",
    "EventLog",
    "ScenarioConfig",
    "build_scenario_state",
    "RunMetrics",
    "collect_metrics",
    "RoundBasedEngine",
    "SimulationResult",
    "run_recovery",
]
