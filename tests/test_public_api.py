"""Tests for the public package surface and the shipped documentation.

These keep the README/DESIGN/EXPERIMENTS documents and the ``repro``
top-level API honest: every name advertised in ``__all__`` must resolve, and
the documentation files must exist and reference the artifacts they promise.
"""

from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"

    def test_key_entry_points_are_importable(self):
        # The objects a downstream user needs for the quickstart workflow.
        assert callable(repro.build_scenario_state)
        assert callable(repro.build_hamilton_cycle)
        assert callable(repro.run_recovery)
        assert callable(repro.derive_rng)
        assert repro.HamiltonReplacementController.name == "SR"
        assert repro.LocalizedReplacementController.name == "AR"
        assert repro.ShortcutReplacementController.name == "SR-shortcut"

    def test_subpackages_import(self):
        import repro.baselines
        import repro.core
        import repro.experiments
        import repro.grid
        import repro.network
        import repro.sim
        import repro.viz

        assert repro.core.analysis.expected_movements(12, 19) == pytest.approx(2.0139, abs=1e-4)

    def test_cli_module_available(self):
        from repro.cli import main

        assert callable(main)


class TestDocumentation:
    @pytest.mark.parametrize("filename", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_documents_exist_and_are_substantial(self, filename):
        path = REPO_ROOT / filename
        assert path.exists(), f"{filename} is a required deliverable"
        assert len(path.read_text().splitlines()) > 30

    def test_design_lists_every_figure(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for fig in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert fig in text

    def test_experiments_covers_every_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert fig in text
        assert "2.0139" in text, "the paper's worked example must be recorded"

    def test_readme_points_to_benchmarks_and_examples(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "pytest benchmarks/ --benchmark-only" in text
        assert "examples/quickstart.py" in text
        assert "ICDCS" in text

    def test_benchmark_exists_for_every_evaluation_figure(self):
        names = {path.name for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        for fig in ("fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert any(fig in name for name in names), f"missing benchmark for {fig}"


class TestScenarioSubsystemExports:
    def test_scenario_entry_points_are_importable(self):
        assert callable(repro.load_scenario)
        assert callable(repro.dump_scenario)
        assert callable(repro.load_catalog_scenario)
        assert repro.Scenario is not None
        assert repro.FailureEvent is not None

    def test_scenarios_md_exists_and_is_substantial(self):
        path = REPO_ROOT / "SCENARIOS.md"
        assert path.exists(), "SCENARIOS.md is a required (generated) deliverable"
        assert len(path.read_text().splitlines()) > 30


class TestDocstringCoverage:
    """Local mirror of the ruff pydocstyle D1 gate configured in pyproject.

    Every public module, class, function, and method under ``src/repro``
    must carry a docstring (magic methods and ``__init__`` exempt), so the
    documentation pass of the public API cannot silently regress even in
    environments without ruff installed.
    """

    def test_every_public_definition_has_a_docstring(self):
        import ast

        missing = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(f"{path.relative_to(REPO_ROOT)}: module docstring")
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    missing.append(
                        f"{path.relative_to(REPO_ROOT)}:{node.lineno} {node.name}"
                    )
        assert not missing, "public definitions without docstrings:\n" + "\n".join(missing)
