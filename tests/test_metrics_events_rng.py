"""Unit tests for run metrics, the event log, and the seeded RNG helpers."""

import pytest

from repro.core.protocol import MobilityController, RoundOutcome
from repro.grid.virtual_grid import GridCoord
from repro.sim.events import Event, EventKind, EventLog
from repro.sim.metrics import RoundSeries, RunMetrics, collect_metrics, snapshot_state
from repro.sim.rng import derive_rng, spawn_seeds

from helpers import make_hole


def make_metrics(**overrides):
    values = dict(
        scheme="SR",
        rounds=5,
        processes_initiated=4,
        processes_converged=3,
        processes_failed=1,
        redundant_processes=0,
        success_rate=0.75,
        total_moves=9,
        total_distance=42.0,
        messages_sent=2,
        initial_holes=4,
        final_holes=1,
        initial_spares=10,
        final_spares=6,
        initial_enabled=50,
        cell_coverage_before=0.8,
        cell_coverage_after=0.95,
    )
    values.update(overrides)
    return RunMetrics(**values)


class TestRunMetrics:
    def test_derived_properties(self):
        metrics = make_metrics()
        assert metrics.repaired_holes == 3
        assert not metrics.coverage_restored
        assert metrics.moves_per_repaired_hole == pytest.approx(3.0)
        assert metrics.distance_per_repaired_hole == pytest.approx(14.0)

    def test_no_repairs_edge_case(self):
        metrics = make_metrics(final_holes=4)
        assert metrics.repaired_holes == 0
        assert metrics.moves_per_repaired_hole == 0.0

    def test_as_dict_round_trip(self):
        data = make_metrics().as_dict()
        assert data["scheme"] == "SR"
        assert data["repaired_holes"] == 3
        assert set(data) >= {"total_moves", "total_distance", "success_rate"}


class TestSnapshotAndCollect:
    def test_snapshot(self, dense_state):
        make_hole(dense_state, GridCoord(0, 0))
        snapshot = snapshot_state(dense_state)
        assert snapshot.holes == 1
        assert snapshot.enabled == dense_state.enabled_count
        assert snapshot.cell_coverage == pytest.approx(19 / 20)

    def test_collect_metrics_uses_controller_aggregates(self, dense_state):
        class FakeController(MobilityController):
            name = "fake"

            def execute_round(self, state, rng, round_index):
                return RoundOutcome(round_index=round_index)

        controller = FakeController()
        process = controller._start_process(GridCoord(0, 0), GridCoord(0, 1), 0)
        process.mark_converged(1)
        snapshot = snapshot_state(dense_state)
        metrics = collect_metrics(controller, dense_state, snapshot, rounds=3, messages_sent=5)
        assert metrics.scheme == "fake"
        assert metrics.processes_initiated == 1
        assert metrics.success_rate == 1.0
        assert metrics.messages_sent == 5
        assert metrics.rounds == 3


class TestRoundSeries:
    def test_recording(self):
        series = RoundSeries()
        series.record(holes=3, moves=2, distance=5.0)
        series.record(holes=1, moves=4, distance=7.0)
        assert series.rounds == 2
        assert series.holes == [3, 1]
        assert series.cumulative_moves == [2, 6]


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(EventKind.HOLE_DETECTED, 0, holes=3)
        log.emit(EventKind.NODE_MOVED, 1, node_id=5)
        log.emit(EventKind.NODE_MOVED, 2, node_id=6)
        assert len(log) == 3
        assert log.count(EventKind.NODE_MOVED) == 2
        assert [e.round_index for e in log.events(EventKind.NODE_MOVED)] == [1, 2]
        assert log.rounds() == [0, 1, 2]

    def test_to_lines_and_str(self):
        log = EventLog()
        log.emit(EventKind.PROCESS_STARTED, 4, process_id=7)
        lines = log.to_lines()
        assert len(lines) == 1
        assert "process_started" in lines[0]
        assert "process_id=7" in lines[0]

    def test_clear(self):
        log = EventLog()
        log.emit(EventKind.ROUND_COMPLETED, 0)
        log.clear()
        assert len(log) == 0

    def test_events_are_immutable_records(self):
        event = Event(kind=EventKind.HOLE_DETECTED, round_index=1, details={"holes": 2})
        with pytest.raises(AttributeError):
            event.round_index = 5


class TestRng:
    def test_derive_rng_is_deterministic(self):
        a = derive_rng(42, "deployment")
        b = derive_rng(42, "deployment")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_by_label(self):
        a = derive_rng(42, "deployment")
        b = derive_rng(42, "controller")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_spawn_seeds(self):
        seeds = spawn_seeds(7, 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5
        assert spawn_seeds(7, 5) == seeds
        assert spawn_seeds(8, 5) != seeds

    def test_spawn_seeds_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)
