"""Tests for the experiment broker (satellite: broker semantics).

The contracts exercised here:

* two concurrent submissions of an identical spec share **one** simulation
  (in-flight dedup) and both receive the same record;
* interactive submissions overtake queued batch work;
* a bounded queue rejects overload with :class:`BrokerQueueFull` instead of
  buffering unboundedly;
* records produced through the broker are byte-identical to a plain
  :class:`SerialExecutor` run of the same specs;
* ``execute_many`` collapses duplicate specs within one batch onto a single
  execution while preserving spec order in the returned records.
"""

import json
import threading
import time

import pytest

from repro.experiments.broker import (
    BrokerQueueFull,
    ExperimentBroker,
    Priority,
    execute_batch,
)
from repro.experiments.orchestration import (
    RunSpec,
    SerialExecutor,
    execute_many,
    execute_run,
)
from repro.experiments.persistence import RunCache, record_to_dict, run_key
from repro.sim.scenario import ScenarioConfig

QUICK_CONFIG = ScenarioConfig(columns=5, rows=5, deployed_count=150, seed=7)


def quick_spec(scheme: str = "SR", seed: int = 7, spare_surplus: int = 10) -> RunSpec:
    return RunSpec(
        scenario=QUICK_CONFIG.with_spare_surplus(spare_surplus),
        scheme=scheme,
        seed=seed,
        max_rounds=40,
    )


def wait_until_draining(broker, timeout: float = 5.0) -> None:
    """Block until the worker has dequeued everything pending (it may be gated)."""
    deadline = time.monotonic() + timeout
    while broker.stats().pending and time.monotonic() < deadline:
        time.sleep(0.005)
    assert broker.stats().pending == 0, "worker never picked up the queued spec"


class GatedRunner:
    """A run_fn that blocks until released, counting real executions."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, spec):
        self.gate.wait(timeout=30)
        with self._lock:
            self.calls.append(spec)
        return execute_run(spec)


# ------------------------------------------------------------ in-flight dedup
def test_identical_concurrent_submissions_share_one_simulation():
    """Acceptance: two submissions of the same spec -> exactly one run."""
    runner = GatedRunner()
    with ExperimentBroker(workers=2, run_fn=runner) as broker:
        spec = quick_spec()
        first = broker.submit(spec)
        second = broker.submit(spec)
        assert second is first
        assert second.deduplicated
        runner.gate.set()
        record_a = first.result(timeout=30)
        record_b = second.result(timeout=30)
    assert record_a is record_b
    assert len(runner.calls) == 1
    stats = broker.stats()
    assert stats.submitted == 2
    assert stats.dedup_hits == 1
    assert stats.executed == 1


def test_resolved_specs_are_not_deduplicated_without_a_cache():
    """Dedup only spans in-flight work; a finished spec runs again (no cache)."""
    runner = GatedRunner()
    runner.gate.set()
    with ExperimentBroker(workers=1, run_fn=runner) as broker:
        spec = quick_spec()
        broker.submit(spec).result(timeout=30)
        handle = broker.submit(spec)
        assert not handle.deduplicated
        handle.result(timeout=30)
    assert len(runner.calls) == 2


def test_cache_answers_before_the_queue(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(execute_run(quick_spec()))
    runner = GatedRunner()  # never released: a queued run would hang
    with ExperimentBroker(cache=cache, workers=1, run_fn=runner) as broker:
        handle = broker.submit(quick_spec())
        assert handle.done() and handle.cached
        record = handle.result(timeout=5)
    assert record.cached
    assert not runner.calls
    assert broker.stats().cache_hits == 1


# ------------------------------------------------------------------ priority
def test_interactive_overtakes_queued_batch_work():
    runner = GatedRunner()
    with ExperimentBroker(workers=1, run_fn=runner) as broker:
        blocker = broker.submit(quick_spec(seed=1))
        wait_until_draining(broker)  # the one worker now holds seed 1 at the gate
        batch = [broker.submit(quick_spec(seed=s), Priority.BATCH) for s in (2, 3)]
        urgent = broker.submit(quick_spec(seed=4), Priority.INTERACTIVE)
        runner.gate.set()
        for handle in [blocker, urgent, *batch]:
            handle.result(timeout=30)
    executed_seeds = [spec.seed for spec in runner.calls]
    assert executed_seeds[0] == 1
    assert executed_seeds[1] == 4, "interactive spec should run before batch backfill"


# ---------------------------------------------------------------- queue bound
def test_bounded_queue_rejects_overload():
    runner = GatedRunner()
    broker = ExperimentBroker(workers=1, queue_limit=2, run_fn=runner)
    try:
        broker.submit(quick_spec(seed=1))
        wait_until_draining(broker)  # the worker holds seed 1 at the gate
        for seed in (2, 3):  # fill the queue exactly to its bound
            broker.submit(quick_spec(seed=seed))
        with pytest.raises(BrokerQueueFull):
            broker.submit(quick_spec(seed=4))
        assert broker.stats().rejected == 1
    finally:
        runner.gate.set()
        broker.shutdown(wait=True)


def test_shutdown_refuses_new_work_but_drains_the_queue():
    runner = GatedRunner()
    broker = ExperimentBroker(workers=1, run_fn=runner)
    handle = broker.submit(quick_spec())
    runner.gate.set()
    broker.shutdown(wait=True)
    assert handle.result(timeout=5) is not None
    with pytest.raises(RuntimeError, match="shut down"):
        broker.submit(quick_spec(seed=99))


def test_failed_run_propagates_to_every_waiter():
    def explode(spec):
        raise ValueError("boom")

    with ExperimentBroker(workers=1, run_fn=explode) as broker:
        handle = broker.submit(quick_spec())
        with pytest.raises(ValueError, match="boom"):
            handle.result(timeout=10)
    assert broker.stats().failed == 1


# -------------------------------------------------------------- byte identity
def canonical(records):
    return json.dumps([record_to_dict(r) for r in records], sort_keys=True)


def test_broker_records_match_serial_executor(tmp_path):
    """Acceptance: broker output is byte-identical to SerialExecutor output."""
    specs = [quick_spec(scheme=s, seed=seed) for s in ("SR", "AR") for seed in (1, 2)]
    serial = execute_many(specs, executor=SerialExecutor())
    with ExperimentBroker(cache=RunCache(tmp_path), workers=3) as broker:
        brokered = broker.run(specs)
    assert canonical(serial) == canonical(brokered)


# -------------------------------------------------------------- in-batch dedup
def test_execute_many_collapses_duplicate_specs(tmp_path):
    """Satellite: duplicates within one batch are simulated exactly once."""
    base = quick_spec()
    other = quick_spec(scheme="AR")
    specs = [base, other, base, base]
    executor = SerialExecutor()
    records = execute_many(specs, executor=executor, cache=RunCache(tmp_path))
    assert executor.runs_executed == 2
    assert len(records) == 4
    assert canonical([records[0]]) == canonical([records[2]]) == canonical([records[3]])
    assert records[1].spec.scheme == "AR"
    # The records must still line up with their specs, in order.
    for spec, record in zip(specs, records):
        assert run_key(record.spec) == run_key(spec)


def test_execute_many_dedup_works_without_a_cache():
    base = quick_spec()
    executor = SerialExecutor()
    records = execute_many([base, base], executor=executor)
    assert executor.runs_executed == 1
    assert canonical([records[0]]) == canonical([records[1]])


def test_execute_batch_mixes_cache_hits_and_misses(tmp_path):
    cache = RunCache(tmp_path)
    cached_spec = quick_spec()
    cache.put(execute_run(cached_spec))
    executor = SerialExecutor()
    records = execute_batch(
        [cached_spec, quick_spec(scheme="AR")], executor=executor, cache=cache
    )
    assert records[0].cached and not records[1].cached
    assert executor.runs_executed == 1


def test_execute_many_routes_through_a_broker(tmp_path):
    specs = [quick_spec(seed=s) for s in (1, 2)]
    with ExperimentBroker(cache=RunCache(tmp_path), workers=2) as broker:
        records = execute_many(specs, broker=broker)
        again = execute_many(specs, broker=broker)
    assert canonical(records) == canonical(execute_many(specs, executor=SerialExecutor()))
    assert all(record.cached for record in again)
