"""Unit tests for the ASCII grid renderer."""

import pytest

from repro.core.hamilton import DualPathHamiltonCycle, SerpentineHamiltonCycle
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.viz.ascii_grid import (
    render_cycle,
    render_dual_paths,
    render_occupancy,
    render_path_overlay,
    render_roles,
)

from helpers import make_hole


class TestOccupancyRendering:
    def test_counts_and_holes(self, dense_state):
        make_hole(dense_state, GridCoord(0, 4))
        text = render_occupancy(dense_state)
        assert "3" in text
        assert "." in text
        # One bordered line per grid row plus the outer borders.
        assert text.count("\n") == 2 * dense_state.grid.rows

    def test_row_orientation_top_is_max_y(self, sparse_state):
        """The first rendered row corresponds to the highest y (paper orientation)."""
        make_hole(sparse_state, GridCoord(0, 4))
        lines = render_occupancy(sparse_state).splitlines()
        first_cell_row = lines[1]
        assert first_cell_row.strip().startswith("|") and "." in first_cell_row

    def test_roles_rendering(self, dense_state):
        make_hole(dense_state, GridCoord(1, 1))
        text = render_roles(dense_state)
        assert "H+2" in text
        assert "." in text

    def test_roles_head_only(self, sparse_state):
        assert "H" in render_roles(sparse_state)
        assert "H+1" not in render_roles(sparse_state)


class TestCycleRendering:
    def test_all_indices_present(self):
        grid = VirtualGrid(4, 5, 1.0)
        text = render_cycle(SerpentineHamiltonCycle(grid))
        for index in range(20):
            assert str(index) in text

    def test_arrows_present(self):
        grid = VirtualGrid(4, 4, 1.0)
        text = render_cycle(SerpentineHamiltonCycle(grid))
        assert any(arrow in text for arrow in "^v<>")

    def test_dual_path_rendering_labels(self):
        grid = VirtualGrid(5, 5, 1.0)
        cycle = DualPathHamiltonCycle(grid)
        text = render_dual_paths(cycle)
        assert " A " in text or "A" in text
        assert "D0" in text  # D is the first chain cell
        assert "C22" in text  # C is the last chain cell of the 5x5 construction

    def test_path_overlay(self):
        grid = VirtualGrid(3, 3, 1.0)
        path = [GridCoord(0, 0), GridCoord(1, 0), GridCoord(1, 1)]
        text = render_path_overlay(grid, path)
        assert "0" in text and "1" in text and "2" in text
