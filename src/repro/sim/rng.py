"""Seeded random-number helpers.

Every stochastic component of the simulator (deployment, failure injection,
controller tie-breaking, movement targets) takes an explicit
:class:`random.Random` so that experiments are reproducible from a single
scenario seed.  The helpers here derive independent streams from that seed in
a stable, documented way.
"""

from __future__ import annotations

import hashlib
import random
from typing import List


def derive_rng(seed: int, label: str) -> random.Random:
    """A :class:`random.Random` derived deterministically from ``(seed, label)``.

    Using a label (e.g. ``"deployment"`` or ``"controller"``) keeps the
    streams of the different simulation stages independent: changing how many
    random numbers one stage consumes does not perturb the others.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def spawn_seeds(seed: int, count: int, label: str = "trial") -> List[int]:
    """Derive ``count`` independent trial seeds from a master seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = derive_rng(seed, f"spawn:{label}")
    return [rng.randrange(2**63) for _ in range(count)]
