"""The ``repro`` experiment service: HTTP serving layer over the broker.

``python -m repro serve`` stands up a stdlib
:class:`http.server.ThreadingHTTPServer` whose handlers answer spec,
scenario, and figure queries **cache-first** through one shared
:class:`~repro.experiments.broker.ExperimentBroker`: a repeated query is one
backend lookup, a novel query is admitted (with in-flight dedup, so a
thundering herd of identical requests costs one simulation), and per-round
series stream back as newline-delimited JSON.

``python -m repro query`` is the matching CLI client
(:class:`~repro.serve.client.ServeClient`, stdlib ``urllib`` only).
"""

from repro.serve.client import ServeClient
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ExperimentServer,
    ServeConfig,
    make_server,
    run_serve_smoke,
    spec_from_request,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ExperimentServer",
    "ServeConfig",
    "ServeClient",
    "make_server",
    "run_serve_smoke",
    "spec_from_request",
]
