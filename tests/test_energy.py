"""Unit tests for the energy model and the accounting helpers."""

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord
from repro.network.energy import (
    EnergyModel,
    EnergySummary,
    energy_summary,
    per_scheme_energy_costs,
    recovery_energy_cost,
    remaining_energy,
)
from repro.network.node import (
    DEFAULT_BATTERY_CAPACITY,
    MESSAGE_COST,
    MOVE_COST_PER_METER,
    NodeState,
)
from repro.sim.engine import run_recovery

from helpers import make_hole


class TestEnergySummary:
    def test_fresh_network_is_fully_charged(self, dense_state):
        summary = energy_summary(dense_state)
        assert summary.enabled_nodes == dense_state.enabled_count
        assert summary.mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)
        assert summary.total_consumed == pytest.approx(0.0)
        assert summary.depleted_nodes == 0
        assert summary.imbalance == pytest.approx(0.0)
        assert summary.head_mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)
        assert summary.spare_mean_energy == pytest.approx(DEFAULT_BATTERY_CAPACITY)

    def test_empty_network(self, dense_state, rng):
        for node in dense_state.enabled_nodes():
            dense_state.disable_node(node.node_id)
        summary = energy_summary(dense_state)
        assert summary.enabled_nodes == 0
        assert summary.total_energy == 0.0

    def test_recovery_drains_energy(self, dense_state, rng):
        make_hole(dense_state, GridCoord(2, 2))
        controller = HamiltonReplacementController(build_hamilton_cycle(dense_state.grid))
        result = run_recovery(dense_state, controller, rng)
        summary = energy_summary(dense_state)
        assert summary.total_consumed > 0.0
        assert summary.imbalance > 0.0
        # Consumed energy matches the cost model applied to the run metrics.
        expected = recovery_energy_cost(
            result.metrics.total_distance, result.metrics.messages_sent
        )
        assert summary.total_consumed == pytest.approx(expected, rel=1e-6)

    def test_consumption_tracks_custom_initial_capacities(self, dense_state):
        # Regression: total_consumed used to assume every node started at the
        # default capacity, so custom batteries broke the accounting.
        for node in dense_state.nodes():
            node.reset_energy(10.0)
        first = next(iter(dense_state.enabled_nodes()))
        first.consume_energy(4.0)
        summary = energy_summary(dense_state)
        assert summary.total_consumed == pytest.approx(4.0)
        assert summary.initial_energy_total == pytest.approx(
            10.0 * dense_state.node_count
        )

    def test_disabled_nodes_consumption_is_not_lost(self, dense_state):
        # Regression: consumption by nodes that were later disabled used to
        # silently vanish from total_consumed.
        node = next(iter(dense_state.enabled_nodes()))
        node.consume_energy(25.0)
        dense_state.disable_node(node.node_id)
        summary = energy_summary(dense_state)
        assert summary.total_consumed == pytest.approx(25.0)

    def test_depleted_count_covers_engine_disabled_nodes(self, dense_state):
        alive = dense_state.enabled_nodes()
        drained, disabled = alive[0], alive[1]
        drained.consume_energy(drained.energy)  # enabled, at zero
        disabled.consume_energy(disabled.energy)
        dense_state.disable_node(disabled.node_id, reason=NodeState.DEPLETED)
        summary = energy_summary(dense_state)
        assert summary.depleted_nodes == 2


class TestEnergyModel:
    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            EnergyModel(idle_cost_per_round=-0.1)
        with pytest.raises(ValueError):
            EnergyModel(depletion_threshold=-1.0)

    def test_apply_round_drains_and_depletes(self, dense_state):
        model = EnergyModel(idle_cost_per_round=1.0, depletion_threshold=0.0)
        victim = next(iter(dense_state.enabled_nodes()))
        victim.reset_energy(0.5)
        before, count_before = remaining_energy(dense_state)
        depleted = model.apply_round(dense_state)
        assert depleted == [victim.node_id]
        assert dense_state.node(victim.node_id).state is NodeState.DEPLETED
        after, count_after = remaining_energy(dense_state)
        assert count_after == count_before - 1
        # Every surviving node paid exactly one round of idle drain.
        assert after == pytest.approx(before - 0.5 - count_after * 1.0)

    def test_threshold_depletion_keeps_residual_energy(self, dense_state):
        model = EnergyModel(idle_cost_per_round=0.0, depletion_threshold=5.0)
        victim = next(iter(dense_state.enabled_nodes()))
        victim.reset_energy(4.0)
        depleted = model.apply_round(dense_state)
        assert depleted == [victim.node_id]
        assert dense_state.node(victim.node_id).energy == pytest.approx(4.0)

    def test_no_depletion_when_everyone_is_charged(self, dense_state):
        model = EnergyModel(idle_cost_per_round=0.1)
        assert model.apply_round(dense_state) == []

    def test_recovery_cost_uses_model_rates(self):
        model = EnergyModel(move_cost_per_meter=2.0, message_cost=0.5)
        assert model.recovery_cost(10.0, messages_sent=4) == pytest.approx(22.0)


class TestCostModel:
    def test_recovery_energy_cost_formula(self):
        cost = recovery_energy_cost(total_distance=25.0, messages_sent=4)
        assert cost == pytest.approx(25.0 * MOVE_COST_PER_METER + 4 * MESSAGE_COST)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recovery_energy_cost(-1.0)
        with pytest.raises(ValueError):
            recovery_energy_cost(1.0, messages_sent=-1)

    def test_per_scheme_costs_follow_distance_ordering(self, dense_state, rng):
        from repro.core.baseline_ar import LocalizedReplacementController

        holes = [GridCoord(1, 1), GridCoord(3, 3)]
        sr_state, ar_state = dense_state.clone(), dense_state.clone()
        for hole in holes:
            make_hole(sr_state, hole)
            make_hole(ar_state, hole)
        sr = HamiltonReplacementController(build_hamilton_cycle(sr_state.grid))
        ar = LocalizedReplacementController(ar_state.grid)
        metrics = {
            "SR": run_recovery(sr_state, sr, rng).metrics,
            "AR": run_recovery(ar_state, ar, rng).metrics,
        }
        costs = per_scheme_energy_costs(metrics)
        assert set(costs) == {"SR", "AR"}
        # In this dense scenario SR moves less, hence consumes less energy.
        assert costs["SR"] <= costs["AR"]
