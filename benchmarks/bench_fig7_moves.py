"""Figure 7: total number of node movements — experimental AR/SR and analytical SR.

Checks the shape the paper reports: SR needs *more* movements than AR in very
sparse networks (the cascade has to walk a long stretch of the Hamilton path)
but fewer movements once the spare surplus passes the crossover region, and
the SR measurements track the Theorem-2 prediction.
"""

from __future__ import annotations

import pytest

from repro.core.baseline_ar import LocalizedReplacementController
from repro.experiments.figures import figure7_node_movements
from repro.sim.engine import run_recovery
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

from figutils import emit


@pytest.mark.benchmark(group="fig7-moves")
def test_fig7_node_movements(benchmark, section5_experiment, results_dir):
    """Regenerate the Figure 7 series and verify its qualitative shape."""
    result = benchmark(figure7_node_movements, section5_experiment)

    emit(result, results_dir, "fig7_node_movements.csv")

    rows = {int(row["N"]): row for row in result.rows}
    sparse = rows[min(rows)]
    dense = rows[max(rows)]
    # Very sparse networks: the SR cascade walks far, costing more moves than AR.
    assert float(sparse["SR_moves"]) > float(sparse["AR_moves"])
    # Dense networks: SR is cheaper than AR (the paper's usual-case claim).
    assert float(dense["SR_moves"]) <= float(dense["AR_moves"])
    # The experimental SR curve tracks the analytical prediction within 2x
    # everywhere (the paper shows them nearly overlapping).
    for row in result.rows:
        analytic = float(row["SR_moves_analytic"])
        measured = float(row["SR_moves"])
        if analytic > 0 and measured > 0:
            assert 0.4 <= measured / analytic <= 2.5
    # Total movements decrease as the spare surplus grows.
    assert float(dense["SR_moves"]) < float(sparse["SR_moves"])


@pytest.mark.benchmark(group="fig7-single-run")
def test_fig7_single_ar_run_cost(benchmark):
    """Benchmark one AR recovery on the paper-sized workload (N = 55)."""
    config = ScenarioConfig(
        columns=16, rows=16, deployed_count=5000, spare_surplus=55, seed=71
    )
    base_state = build_scenario_state(config)

    def run():
        state = base_state.clone()
        controller = LocalizedReplacementController(state.grid)
        return run_recovery(state, controller, derive_rng(71, "bench")).metrics

    metrics = benchmark(run)
    assert metrics.total_moves > 0
    assert metrics.processes_initiated > metrics.initial_holes
