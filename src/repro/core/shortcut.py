"""Short-cut SR: the paper's stated future work, implemented as an extension.

Section 5 closes with: "A short-cut along the Hamilton cycle can reduce the
length of the path for replacement process to approach a spare node.  The
construction of such a short-cut will be our future work to further increase
the convergence speed of SR.  As a result, the cost of SR will be reduced
greatly in the cases when N < 55."

This module implements the most natural such short-cut that still only uses
1-hop information: before a head extends the cascade *along the cycle* (which
may have to walk a long way before it meets a spare), it first asks its
physical 4-neighbourhood.  If any neighbouring cell holds a spare, that spare
is pulled in directly and the process converges — a one-hop short-cut across
the Hamilton path.  The synchronisation property is untouched: the vacancy is
still served by its unique cycle initiator; only the *supplier* of the
replacement node may come from a neighbouring cell instead of from further
up the path.

The ablation benchmark (``benchmarks/bench_ablation_extensions.py``) compares
plain SR against this variant in the sparse regime the paper highlights.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.hamilton import HamiltonCycle
from repro.core.protocol import ReplacementProcess, RoundOutcome
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord
from repro.network.node import SensorNode
from repro.network.state import WsnState


class ShortcutReplacementController(HamiltonReplacementController):
    """SR with a 1-hop short-cut across the Hamilton path.

    Behaviour is identical to :class:`HamiltonReplacementController` except in
    Algorithm 1's step 3: when the initiator head has no spare of its own, it
    first looks for a spare in the cells adjacent to the *vacant* cell.  If
    one exists, that spare moves in directly and the process converges without
    extending the snake.  Only when no adjacent cell can help does the cascade
    continue along the directed Hamilton path as in plain SR.
    """

    name = "SR-shortcut"

    def __init__(
        self,
        cycle: HamiltonCycle,
        max_hops: Optional[int] = None,
        spare_selection: str = "nearest",
        shortcut_radius: int = 1,
    ) -> None:
        super().__init__(cycle, max_hops=max_hops, spare_selection=spare_selection)
        if shortcut_radius < 1:
            raise ValueError(f"shortcut_radius must be >= 1, got {shortcut_radius}")
        self.shortcut_radius = shortcut_radius
        self.shortcut_moves = 0

    # ------------------------------------------------------------------ hooks
    def _shortcut_cells(self, state: WsnState, vacant: GridCoord) -> List[GridCoord]:
        """Cells within ``shortcut_radius`` grid hops of the vacancy (excluding it)."""
        frontier = {vacant}
        seen = {vacant}
        for _ in range(self.shortcut_radius):
            frontier = {
                neighbour
                for cell in frontier
                for neighbour in state.grid.neighbours(cell)
                if neighbour not in seen
            }
            seen.update(frontier)
        return sorted(seen - {vacant}, key=lambda c: c.as_tuple())

    def _find_shortcut_supplier(
        self, state: WsnState, vacant: GridCoord
    ) -> Optional[GridCoord]:
        """The neighbouring cell to pull a spare from, or ``None`` when none has one.

        Adjacent cells are preferred (a legal single-hop move); cells further
        out are only considered when ``shortcut_radius > 1`` and are used to
        route a spare over intermediate cells, which plain SR cannot do.
        """
        candidates = [
            cell
            for cell in self._shortcut_cells(state, vacant)
            if cell.is_neighbour_of(vacant) and self._usable_spares(state, cell)
        ]
        if not candidates:
            return None
        # Deterministic preference: the candidate with the most spares, ties
        # broken by coordinates, so repeated runs stay reproducible.
        return max(
            candidates,
            key=lambda cell: (len(self._usable_spares(state, cell)), (-cell.x, -cell.y)),
        )

    def _serve_vacancy(
        self,
        state: WsnState,
        rng: random.Random,
        round_index: int,
        vacant: GridCoord,
        initiator: GridCoord,
        head: SensorNode,
        process: ReplacementProcess,
        outcome: RoundOutcome,
    ) -> None:
        # Step 2 of Algorithm 1 is unchanged: a usable (non-depleted) spare in
        # the initiator cell always wins (it is also a 1-hop move and needs no
        # extra messages).
        if self._usable_spares(state, initiator):
            super()._serve_vacancy(
                state, rng, round_index, vacant, initiator, head, process, outcome
            )
            return

        shortcut_cell = self._find_shortcut_supplier(state, vacant)
        if shortcut_cell is None or shortcut_cell == initiator:
            super()._serve_vacancy(
                state, rng, round_index, vacant, initiator, head, process, outcome
            )
            return

        # Short-cut: pull the spare straight from the neighbouring cell.  The
        # initiator still coordinates the repair (one notification), so the
        # one-process-per-hole property is preserved.  The notification is
        # advisory — the spare dispatch itself carries the command — so it is
        # fire-and-forget on every channel and never gates the move.
        spare = self._select_spare(state, shortcut_cell, vacant, rng)
        assert spare is not None
        process.notifications_sent += 1
        outcome.messages_sent += 1
        self._post_replacement_request(
            sender=head,
            source_cell=initiator,
            target_cell=shortcut_cell,
            vacancy=vacant,
            process_id=process.process_id,
            round_index=round_index,
            reliable=False,
        )
        record = state.move_node(
            spare.node_id, vacant, rng, round_index, process_id=process.process_id
        )
        process.record_move(record)
        outcome.moves.append(record)
        self.shortcut_moves += 1
        del self._vacancy_process[vacant]
        process.mark_converged(round_index)
        outcome.processes_converged.append(process.process_id)
