"""Sensor node model.

A node is a small battery-powered device with a position, a radio, and a
working status.  Following the paper, nodes that have failed or misbehave are
*disabled* and excluded from the collaboration; the remaining *enabled* nodes
constitute the WSN.  Within each virtual-grid cell one enabled node is
elected *grid head* and the others are *spare* nodes.

Since the struct-of-arrays refactor, :class:`SensorNode` is a thin *handle*:
a node can be **unbound** (a standalone object holding its own fields, as
before) or **bound** to a row of a :class:`~repro.network.node_arrays.NodeArrays`
store, in which case energy/state/role/move accounting reads and writes go
straight to the backing numpy arrays.  The public API is identical in both
modes, so controllers, the engine, and metrics never need to know which kind
of node they hold.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.grid.geometry import Point


class NodeState(enum.Enum):
    """Working status of a sensor node."""

    ENABLED = "enabled"
    FAILED = "failed"
    MISBEHAVING = "misbehaving"
    DEPLETED = "depleted"

    @property
    def is_enabled(self) -> bool:
        """Whether this state means the node is operational."""
        return self is NodeState.ENABLED


class NodeRole(enum.Enum):
    """Role of an enabled node inside its virtual-grid cell."""

    HEAD = "head"
    SPARE = "spare"
    UNASSIGNED = "unassigned"


#: int8 codes used by the struct-of-arrays store (``NodeArrays.state``).
STATE_CODES = {
    NodeState.ENABLED: 0,
    NodeState.FAILED: 1,
    NodeState.MISBEHAVING: 2,
    NodeState.DEPLETED: 3,
}
#: Reverse mapping: ``STATE_BY_CODE[code]`` is the :class:`NodeState`.
STATE_BY_CODE = tuple(sorted(STATE_CODES, key=STATE_CODES.get))

#: int8 codes used by the struct-of-arrays store (``NodeArrays.role``).
ROLE_CODES = {
    NodeRole.UNASSIGNED: 0,
    NodeRole.HEAD: 1,
    NodeRole.SPARE: 2,
}
#: Reverse mapping: ``ROLE_BY_CODE[code]`` is the :class:`NodeRole`.
ROLE_BY_CODE = tuple(sorted(ROLE_CODES, key=ROLE_CODES.get))

#: Default battery capacity in joules.  The exact value is irrelevant to the
#: paper's experiments; it only matters for the battery-depletion failure
#: model and the energy accounting extension.
DEFAULT_BATTERY_CAPACITY = 100.0

#: Energy cost per metre moved (joules/metre).  Movement dominates the energy
#: budget of mobile sensors, so message costs are comparatively tiny.
MOVE_COST_PER_METER = 1.0

#: Energy cost of transmitting one control message (joules).
MESSAGE_COST = 0.01

#: Maximum number of past positions :meth:`SensorNode.relocate` retains when
#: history recording is requested.  History is opt-in (``record_history=True``)
#: and bounded, so lifetime runs no longer pay an O(total-moves) memory tax.
POSITION_HISTORY_LIMIT = 64


class SensorNode:
    """A single sensor device (possibly a view onto a ``NodeArrays`` row).

    Attributes
    ----------
    node_id:
        Unique integer identifier.
    position:
        Current location in the surveillance plane (metres).
    state:
        Whether the node is enabled or disabled (failed / misbehaving).
    role:
        Head / spare role within its current cell.
    energy:
        Remaining battery energy in joules.
    initial_energy:
        Battery capacity the node started with (defaults to ``energy``).
        Energy accounting sums ``initial_energy - energy`` per node, so
        heterogeneous capacities and disabled nodes are both handled.
    moved_distance:
        Total distance moved so far, in metres.
    move_count:
        Number of relocation moves performed so far.
    position_history:
        Up to :data:`POSITION_HISTORY_LIMIT` past positions, recorded only on
        ``relocate(..., record_history=True)`` calls (empty by default).
    """

    __slots__ = (
        "node_id",
        "_arrays",
        "_row",
        "_position",
        "_state",
        "_role",
        "_energy",
        "_initial_energy",
        "_moved_distance",
        "_move_count",
        "_history",
    )

    def __init__(
        self,
        node_id: int,
        position: Point,
        state: NodeState = NodeState.ENABLED,
        role: NodeRole = NodeRole.UNASSIGNED,
        energy: float = DEFAULT_BATTERY_CAPACITY,
        initial_energy: Optional[float] = None,
        moved_distance: float = 0.0,
        move_count: int = 0,
        position_history: Optional[List[Point]] = None,
    ) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {node_id}")
        if energy < 0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        if initial_energy is None:
            initial_energy = energy
        elif initial_energy < 0:
            raise ValueError(
                f"initial_energy must be non-negative, got {initial_energy}"
            )
        self.node_id = node_id
        self._arrays = None
        self._row = -1
        self._position = position
        self._state = state
        self._role = role
        self._energy = energy
        self._initial_energy = initial_energy
        self._moved_distance = moved_distance
        self._move_count = move_count
        self._history = list(position_history) if position_history else None

    # ------------------------------------------------------------- array view
    @classmethod
    def _bound(cls, arrays, row: int) -> "SensorNode":
        """Create a handle reading/writing row ``row`` of ``arrays``."""
        node = cls.__new__(cls)
        node.node_id = int(arrays.node_ids[row])
        node._arrays = arrays
        node._row = row
        node._position = Point(
            float(arrays.positions[row, 0]), float(arrays.positions[row, 1])
        )
        node._state = None
        node._role = None
        node._energy = 0.0
        node._initial_energy = 0.0
        node._moved_distance = 0.0
        node._move_count = 0
        node._history = None
        return node

    def _bind(self, arrays, row: int) -> None:
        """Attach this (already array-snapshotted) node to its backing row."""
        self._arrays = arrays
        self._row = row

    # --------------------------------------------------------------- accessors
    @property
    def position(self) -> Point:
        """Current location in the surveillance plane (metres)."""
        return self._position

    @position.setter
    def position(self, value: Point) -> None:
        """Set the location, writing through to the backing arrays when bound."""
        self._position = value
        if self._arrays is not None:
            self._arrays.positions[self._row, 0] = value.x
            self._arrays.positions[self._row, 1] = value.y

    @property
    def state(self) -> NodeState:
        """Whether the node is enabled or disabled (failed / misbehaving)."""
        if self._arrays is not None:
            return STATE_BY_CODE[self._arrays.state[self._row]]
        return self._state

    @state.setter
    def state(self, value: NodeState) -> None:
        """Set the working status (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.state[self._row] = STATE_CODES[value]
        else:
            self._state = value

    @property
    def role(self) -> NodeRole:
        """Head / spare role within the node's current cell."""
        if self._arrays is not None:
            return ROLE_BY_CODE[self._arrays.role[self._row]]
        return self._role

    @role.setter
    def role(self, value: NodeRole) -> None:
        """Set the cell role (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.role[self._row] = ROLE_CODES[value]
        else:
            self._role = value

    @property
    def energy(self) -> float:
        """Remaining battery energy in joules."""
        if self._arrays is not None:
            return float(self._arrays.energy[self._row])
        return self._energy

    @energy.setter
    def energy(self, value: float) -> None:
        """Set the remaining battery energy (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.energy[self._row] = value
        else:
            self._energy = value

    @property
    def initial_energy(self) -> float:
        """Battery capacity the node started with."""
        if self._arrays is not None:
            return float(self._arrays.initial_energy[self._row])
        return self._initial_energy

    @initial_energy.setter
    def initial_energy(self, value: float) -> None:
        """Set the starting battery capacity (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.initial_energy[self._row] = value
        else:
            self._initial_energy = value

    @property
    def moved_distance(self) -> float:
        """Total distance moved so far, in metres."""
        if self._arrays is not None:
            return float(self._arrays.moved_distance[self._row])
        return self._moved_distance

    @moved_distance.setter
    def moved_distance(self, value: float) -> None:
        """Set the cumulative moved distance (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.moved_distance[self._row] = value
        else:
            self._moved_distance = value

    @property
    def move_count(self) -> int:
        """Number of relocation moves performed so far."""
        if self._arrays is not None:
            return int(self._arrays.move_count[self._row])
        return self._move_count

    @move_count.setter
    def move_count(self, value: int) -> None:
        """Set the cumulative move count (array-backed when bound)."""
        if self._arrays is not None:
            self._arrays.move_count[self._row] = value
        else:
            self._move_count = value

    @property
    def position_history(self) -> List[Point]:
        """Recorded past positions (empty unless history recording was used)."""
        return self._history if self._history is not None else []

    @position_history.setter
    def position_history(self, value: Optional[List[Point]]) -> None:
        """Replace the recorded history (``None``/empty clears it)."""
        self._history = list(value) if value else None

    # ------------------------------------------------------------------ state
    @property
    def is_enabled(self) -> bool:
        """Whether the node participates in the collaboration."""
        return self.state.is_enabled

    @property
    def is_head(self) -> bool:
        """Whether the node currently holds the grid-head role."""
        return self.is_enabled and self.role is NodeRole.HEAD

    @property
    def is_spare(self) -> bool:
        """Whether the node currently holds the spare role."""
        return self.is_enabled and self.role is NodeRole.SPARE

    def disable(self, reason: NodeState = NodeState.FAILED) -> None:
        """Remove the node from the collaboration (failure or misbehaviour)."""
        if reason is NodeState.ENABLED:
            raise ValueError("disable() requires a non-enabled reason state")
        self.state = reason
        self.role = NodeRole.UNASSIGNED

    def enable(self) -> None:
        """Re-admit the node to the collaboration (e.g. after re-attestation)."""
        self.state = NodeState.ENABLED
        self.role = NodeRole.UNASSIGNED

    # ------------------------------------------------------------------- move
    def relocate(
        self,
        target: Point,
        record_history: bool = False,
        cost_per_meter: float = MOVE_COST_PER_METER,
    ) -> float:
        """Move the node to ``target`` and account for distance and energy.

        Returns the distance travelled.  Raises :class:`RuntimeError` when the
        node is disabled — disabled nodes cannot take part in replacement —
        or when its battery is depleted: a node with an empty battery has no
        motor power left, consistent with the engine-level depletion
        semantics that disable such nodes outright.
        """
        if not self.is_enabled:
            raise RuntimeError(f"node {self.node_id} is disabled and cannot move")
        if self.is_battery_depleted:
            raise RuntimeError(
                f"node {self.node_id} has a depleted battery and cannot move"
            )
        distance = self._position.distance_to(target)
        if record_history:
            if self._history is None:
                self._history = []
            self._history.append(self._position)
            if len(self._history) > POSITION_HISTORY_LIMIT:
                del self._history[: len(self._history) - POSITION_HISTORY_LIMIT]
        self.position = target
        self.moved_distance = self.moved_distance + distance
        self.move_count = self.move_count + 1
        self.consume_energy(distance * cost_per_meter)
        return distance

    # ----------------------------------------------------------------- energy
    def consume_energy(self, amount: float) -> None:
        """Subtract ``amount`` joules, clamping at zero."""
        if amount < 0:
            raise ValueError(f"energy amount must be non-negative, got {amount}")
        self.energy = max(0.0, self.energy - amount)

    @property
    def is_battery_depleted(self) -> bool:
        """Whether the battery is empty (remaining energy at or below zero)."""
        return self.energy <= 0.0

    def charge_message_cost(self, messages: int = 1, cost: float = MESSAGE_COST) -> None:
        """Account for the transmission cost of ``messages`` control messages."""
        self.consume_energy(cost * messages)

    def reset_energy(self, capacity: float) -> None:
        """Install a fresh battery of ``capacity`` joules (scenario setup hook)."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.energy = capacity
        self.initial_energy = capacity

    @property
    def consumed_energy(self) -> float:
        """Energy spent since deployment (joules); clamping never goes negative."""
        return max(0.0, (self.initial_energy or 0.0) - self.energy)

    # ------------------------------------------------------------------ copy
    def copy(self) -> "SensorNode":
        """Independent (unbound) copy of the node's current field values."""
        return SensorNode(
            node_id=self.node_id,
            position=self.position,
            state=self.state,
            role=self.role,
            energy=self.energy,
            initial_energy=self.initial_energy,
            moved_distance=self.moved_distance,
            move_count=self.move_count,
            position_history=list(self._history) if self._history else None,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SensorNode):
            return NotImplemented
        return (
            self.node_id == other.node_id
            and self.position == other.position
            and self.state is other.state
            and self.role is other.role
            and self.energy == other.energy
            and self.initial_energy == other.initial_energy
            and self.moved_distance == other.moved_distance
            and self.move_count == other.move_count
            and self.position_history == other.position_history
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SensorNode(id={self.node_id}, pos=({self.position.x:.2f}, "
            f"{self.position.y:.2f}), state={self.state.value}, role={self.role.value})"
        )


def enabled_only(nodes) -> List[SensorNode]:
    """Filter an iterable of nodes down to the enabled ones."""
    return [node for node in nodes if node.is_enabled]


def find_node(nodes, node_id: int) -> Optional[SensorNode]:
    """Linear search for a node by id (convenience for small collections)."""
    for node in nodes:
        if node.node_id == node_id:
            return node
    return None
