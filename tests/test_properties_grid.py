"""Property-based tests (hypothesis) for the virtual grid and geometry."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.geometry import BoundingBox, Point
from repro.grid.virtual_grid import (
    GridCoord,
    VirtualGrid,
    cell_side_for_range,
    required_range_for_cell,
)

grid_dims = st.integers(min_value=1, max_value=30)
cell_sizes = st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False)
coordinates = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


@given(coordinates, coordinates, coordinates, coordinates)
def test_distance_symmetry_and_triangle_inequality(x1, y1, x2, y2):
    a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
    assert a.distance_to(b) == b.distance_to(a)
    assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6
    assert a.distance_to(b) >= 0


@given(coordinates, coordinates)
def test_manhattan_dominates_euclidean(x, y):
    a, b = Point(0, 0), Point(x, y)
    assert a.manhattan_distance_to(b) >= a.distance_to(b) - 1e-9


@given(grid_dims, grid_dims, cell_sizes)
def test_grid_enumeration_is_complete_and_unique(columns, rows, cell_size):
    grid = VirtualGrid(columns, rows, cell_size)
    coords = list(grid.all_coords())
    assert len(coords) == columns * rows
    assert len(set(coords)) == columns * rows
    assert all(grid.contains_coord(c) for c in coords)


@given(grid_dims, grid_dims, cell_sizes, st.integers(0, 10_000))
@settings(max_examples=60)
def test_cell_of_round_trip(columns, rows, cell_size, salt):
    """Any point of the area maps to a cell whose bounds contain it."""
    grid = VirtualGrid(columns, rows, cell_size)
    # Derive an in-bounds point deterministically from the salt.
    fx = (salt % 101) / 100.0
    fy = (salt % 97) / 96.0
    point = Point(
        grid.bounds.min_x + fx * grid.bounds.width,
        grid.bounds.min_y + fy * grid.bounds.height,
    )
    coord = grid.cell_of(point)
    assert grid.contains_coord(coord)
    assert grid.cell_bounds(coord).contains(point, tolerance=1e-9)


@given(grid_dims, grid_dims, cell_sizes)
def test_neighbour_relation_is_symmetric_and_adjacent(columns, rows, cell_size):
    grid = VirtualGrid(columns, rows, cell_size)
    for coord in grid.all_coords():
        for neighbour in grid.neighbours(coord):
            assert coord in grid.neighbours(neighbour)
            assert coord.manhattan_distance_to(neighbour) == 1
            # Neighbouring cell centres are exactly one cell side apart.
            assert math.isclose(
                grid.center_distance(coord, neighbour), cell_size, rel_tol=1e-9
            )


@given(grid_dims, grid_dims, cell_sizes)
def test_cell_areas_tile_the_surveillance_area(columns, rows, cell_size):
    grid = VirtualGrid(columns, rows, cell_size)
    total_cells_area = sum(grid.cell_bounds(c).area for c in grid.all_coords())
    assert math.isclose(total_cells_area, grid.bounds.area, rel_tol=1e-9)


@given(cell_sizes)
def test_range_cell_relation_round_trip(cell_size):
    assert math.isclose(
        cell_side_for_range(required_range_for_cell(cell_size)), cell_size, rel_tol=1e-12
    )


@given(grid_dims, grid_dims, cell_sizes)
def test_central_area_is_centered_quarter(columns, rows, cell_size):
    grid = VirtualGrid(columns, rows, cell_size)
    coord = GridCoord(columns - 1, rows - 1)
    central = grid.central_area(coord)
    bounds = grid.cell_bounds(coord)
    assert math.isclose(central.area, bounds.area / 4.0, rel_tol=1e-9)
    assert math.isclose(central.center.x, bounds.center.x, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(central.center.y, bounds.center.y, rel_tol=1e-9, abs_tol=1e-9)
