"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows of the
library without writing any code:

* ``figures`` — regenerate the data behind the paper's evaluation figures
  (tables, optional CSV export, optional ASCII charts);
* ``compare`` — run any subset of the implemented schemes on one scenario and
  print their cost metrics side by side;
* ``lifetime`` — run schemes to network death under the energy model and
  report how many rounds each kept the area covered (``--smoke`` runs the CI
  determinism/physics gate instead);
* ``scenario`` — work with declarative scenario files and the curated
  catalog: ``list`` the shipped scenarios, ``show`` a document, ``run`` or
  ``sweep`` one (by catalog name or file path), ``fuzz`` the declarative
  space with the differential oracle harness, ``replay`` an archived
  falsifier with its per-oracle verdict table, and generate the
  ``SCENARIOS.md`` catalog reference with ``docs``;
* ``analyze`` — evaluate the Theorem-2 analytical model for a given spare
  count and Hamilton-path length;
* ``layout`` — print the Hamilton cycle or dual-path construction of a grid;
* ``serve`` — stand up the HTTP experiment service: spec/scenario/figure
  queries answered cache-first through a long-running
  :class:`~repro.experiments.broker.ExperimentBroker` (``--smoke`` runs the
  CI serving gate instead);
* ``query`` — the matching client: ask a running service for health, stats,
  scenarios, figures, or a single run (``--stream`` for live per-round
  events).

Commands that simulate accept ``--cache-dir`` plus ``--cache-backend``
(``json`` files or one concurrent-safe ``sqlite`` database) to persist and
reuse run records across invocations.

Every command accepts ``--help``.  The CLI is a thin layer over
:mod:`repro.experiments`; anything it prints can also be obtained
programmatically.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core import analysis
from repro.experiments.figures import (
    PAPER_SPARE_VALUES,
    QUICK_SPARE_VALUES,
    figure1_hamilton_layout,
    figure3_expected_movements,
    figure4_dual_path_layout,
    figure5_distance_estimates,
    figure6_processes_and_success,
    figure7_node_movements,
    figure8_total_distance,
    run_section5_experiment,
)
from repro.experiments.lifetime import (
    DEFAULT_LIFETIME_SCHEMES,
    LIFETIME_CONFIG,
    run_lifetime_experiment,
    run_lifetime_smoke,
)
from repro.experiments.catalog import (
    catalog_names,
    render_catalog_docs,
    resolve_scenario,
)
from repro.experiments.orchestration import (
    RunExecutor,
    RunSpec,
    execute_many,
    make_executor,
)
from repro.experiments.persistence import CACHE_BACKENDS, RunCache, make_cache
from repro.experiments.state_cache import (
    STATE_CACHE_MODES,
    StateCache,
    set_default_state_cache,
)
from repro.experiments.scenario_files import (
    Scenario,
    ScenarioValidationError,
    dumps_scenario,
    tabulate_records,
)
from repro.experiments.plotting import ascii_chart
from repro.experiments.registry import available_schemes
from repro.experiments.results import ExperimentResult
from repro.network.channel import ChannelModel, parse_channel_spec
from repro.network.energy import EnergyModel
from repro.sim.scenario import ScenarioConfig

#: Figures that need the experimental SR-vs-AR sweep (as opposed to analysis only).
EXPERIMENTAL_FIGURES = ("fig6", "fig7", "fig8")
ALL_FIGURES = ("fig1", "fig3", "fig4", "fig5") + EXPERIMENTAL_FIGURES


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mobility Control for Complete Coverage in Wireless "
            "Sensor Networks' (ICDCS 2008 Workshops)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="regenerate the data series behind the paper's figures"
    )
    figures.add_argument(
        "which",
        nargs="*",
        default=["all"],
        help=f"figures to regenerate: any of {', '.join(ALL_FIGURES)} or 'all'",
    )
    figures.add_argument(
        "--quick",
        action="store_true",
        help="use the small spare-surplus sweep (fast smoke run) for figures 6-8",
    )
    figures.add_argument(
        "--csv-dir", type=Path, default=None, help="also write each series as CSV here"
    )
    figures.add_argument(
        "--chart", action="store_true", help="print ASCII charts in addition to tables"
    )
    figures.add_argument("--seed", type=int, default=2008, help="master random seed")
    figures.add_argument(
        "--trials", type=int, default=1, help="trials to average for figures 6-8"
    )
    _add_execution_arguments(figures)

    compare = subparsers.add_parser(
        "compare", help="run several schemes on one identical scenario"
    )
    compare.add_argument(
        "--columns", type=int, default=16, help="virtual-grid columns (n)"
    )
    compare.add_argument("--rows", type=int, default=16, help="virtual-grid rows (m)")
    compare.add_argument(
        "--nodes",
        "--deployed",
        dest="deployed",
        type=int,
        default=5000,
        help="number of deployed sensors (--deployed is an accepted alias); "
        "together with --columns/--rows this makes large-grid scenarios "
        "reachable without code edits",
    )
    compare.add_argument(
        "--spare-surplus", type=int, default=55, help="the paper's N (enabled - m*n)"
    )
    compare.add_argument("--communication-range", type=float, default=10.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--max-rounds", type=int, default=None)
    _add_channel_argument(compare)
    compare.add_argument(
        "--schemes",
        nargs="+",
        default=["SR", "AR"],
        choices=list(available_schemes()),
        help="schemes to run",
    )
    _add_shards_argument(compare)
    _add_execution_arguments(compare)

    lifetime = subparsers.add_parser(
        "lifetime",
        help="run schemes to network death under the energy model and report lifetimes",
    )
    lifetime.add_argument(
        "--columns", type=int, default=LIFETIME_CONFIG.columns, help="virtual-grid columns (n)"
    )
    lifetime.add_argument(
        "--rows", type=int, default=LIFETIME_CONFIG.rows, help="virtual-grid rows (m)"
    )
    lifetime.add_argument(
        "--nodes",
        "--deployed",
        dest="deployed",
        type=int,
        default=LIFETIME_CONFIG.deployed_count,
        help="number of deployed sensors (--deployed is an accepted alias)",
    )
    lifetime.add_argument(
        "--spare-surplus",
        type=int,
        default=LIFETIME_CONFIG.spare_surplus,
        help="the paper's N (enabled - m*n)",
    )
    lifetime.add_argument(
        "--communication-range", type=float, default=LIFETIME_CONFIG.communication_range
    )
    lifetime.add_argument("--seed", type=int, default=LIFETIME_CONFIG.seed)
    lifetime.add_argument(
        "--initial-energy",
        type=float,
        default=LIFETIME_CONFIG.initial_energy,
        help="battery capacity per node in joules",
    )
    lifetime.add_argument(
        "--energy-jitter",
        type=float,
        default=LIFETIME_CONFIG.initial_energy_jitter,
        help="fraction in [0, 1) by which individual batteries fall below the capacity",
    )
    lifetime.add_argument(
        "--idle-cost",
        type=float,
        default=0.25,
        help="idle/sensing drain per node per round (joules)",
    )
    lifetime.add_argument(
        "--depletion-threshold",
        type=float,
        default=0.0,
        help="remaining energy at or below which the engine disables a node",
    )
    lifetime.add_argument(
        "--max-rounds", type=int, default=1500, help="hard bound on simulation rounds"
    )
    lifetime.add_argument(
        "--trials", type=int, default=1, help="independent trials to average"
    )
    lifetime.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_LIFETIME_SCHEMES),
        choices=list(available_schemes()),
        help="schemes to run to network death",
    )
    lifetime.add_argument(
        "--csv-dir", type=Path, default=None, help="also write the table as CSV here"
    )
    lifetime.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke gate (fixed workload, determinism + physics checks) "
        "instead of the configured experiment",
    )
    _add_shards_argument(lifetime)
    _add_execution_arguments(lifetime)

    scenario = subparsers.add_parser(
        "scenario",
        help="work with declarative scenario files and the curated catalog",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="list the shipped catalog scenarios")

    show = scenario_sub.add_parser(
        "show", help="print a scenario document (catalog name or file path)"
    )
    show.add_argument("ref", help="catalog scenario name or path to a .toml/.json file")
    show.add_argument(
        "--format", choices=("toml", "json"), default="toml", help="output format"
    )

    run = scenario_sub.add_parser(
        "run", help="execute a scenario (catalog name or file path)"
    )
    run.add_argument("ref", help="catalog scenario name or path to a .toml/.json file")
    run.add_argument(
        "--smoke",
        action="store_true",
        help="run the bounded CI variant (one trial, capped rounds) instead of "
        "the full scenario",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the scenario's master seed"
    )
    run.add_argument(
        "--trials", type=int, default=None, help="override the scenario's trial count"
    )
    run.add_argument(
        "--csv-dir", type=Path, default=None, help="also write the table as CSV here"
    )
    _add_channel_argument(run)
    _add_shards_argument(run)
    _add_execution_arguments(run)

    sweep = scenario_sub.add_parser(
        "sweep",
        help="run a scenario across several spare-surplus values (the paper's N)",
    )
    sweep.add_argument("ref", help="catalog scenario name or path to a .toml/.json file")
    sweep.add_argument(
        "--spares",
        type=int,
        nargs="+",
        required=True,
        help="spare-surplus values N to sweep over",
    )
    sweep.add_argument(
        "--seed", type=int, default=None, help="override the scenario's master seed"
    )
    sweep.add_argument(
        "--trials", type=int, default=None, help="override the scenario's trial count"
    )
    sweep.add_argument(
        "--csv-dir", type=Path, default=None, help="also write the table as CSV here"
    )
    _add_shards_argument(sweep)
    _add_execution_arguments(sweep)

    fuzz = scenario_sub.add_parser(
        "fuzz",
        help="sample valid scenarios from the declarative space and check "
        "every registered scheme against the differential oracles",
    )
    fuzz.add_argument(
        "--samples",
        type=int,
        default=None,
        help="number of scenarios to sample (deterministic mode: equal seeds "
        "give equal falsifier sets)",
    )
    fuzz.add_argument(
        "--minutes",
        type=float,
        default=None,
        help="time budget in minutes instead of a sample count (at least one "
        "sample always runs)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="session seed of the scenario sampler"
    )
    fuzz.add_argument(
        "--archive-dir",
        type=Path,
        default=None,
        help="archive minimized falsifiers as replayable TOML here "
        "(default: the packaged falsified catalog, "
        "src/repro/scenarios/falsified/)",
    )
    fuzz.add_argument(
        "--no-archive",
        action="store_true",
        help="report falsifiers without writing any TOML archive",
    )
    _add_execution_arguments(fuzz)

    replay = scenario_sub.add_parser(
        "replay",
        help="re-run a falsifier (or any scenario) across all registered "
        "schemes and print the per-oracle verdict table",
    )
    replay.add_argument(
        "ref",
        help="falsified-catalog name, curated catalog name, or path to a "
        ".toml/.json scenario file",
    )
    _add_execution_arguments(replay)

    docs = scenario_sub.add_parser(
        "docs", help="render the generated SCENARIOS.md catalog reference"
    )
    docs.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the rendering here instead of stdout",
    )
    docs.add_argument(
        "--check",
        type=Path,
        default=None,
        help="compare the rendering against this file and fail on any drift "
        "(the CI docs-sync gate)",
    )

    analyze = subparsers.add_parser(
        "analyze", help="evaluate the Theorem-2 analytical model"
    )
    analyze.add_argument("--spares", type=int, required=True, help="number of spare nodes N")
    analyze.add_argument(
        "--path-length", type=int, default=255, help="Hamilton path length L (default 16x16)"
    )
    analyze.add_argument(
        "--cell-size", type=float, default=4.4721, help="cell side r in metres"
    )

    layout = subparsers.add_parser(
        "layout", help="print the Hamilton cycle / dual-path construction of a grid"
    )
    layout.add_argument("--columns", type=int, default=4)
    layout.add_argument("--rows", type=int, default=5)

    serve = subparsers.add_parser(
        "serve",
        help="stand up the HTTP experiment service (cache-first, broker-backed)",
    )
    serve.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port (default 8008; 0 = ephemeral)"
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent run store shared across restarts (default: a "
        "private temporary store that is discarded on exit)",
    )
    serve.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default="sqlite",
        help="store format under --cache-dir (default sqlite: the "
        "concurrent-safe choice for a long-running service)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="broker worker threads simulating cache misses",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="pending-run bound before /run answers HTTP 503 (0 = unbounded)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per request"
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI serving gate (ephemeral server, uncached + cached + "
        "streamed queries) instead of serving",
    )

    query = subparsers.add_parser(
        "query", help="query a running 'repro serve' instance"
    )
    query.add_argument(
        "--url",
        default=None,
        help="service base URL (default http://127.0.0.1:8008)",
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)
    query_sub.add_parser("health", help="liveness and uptime")
    query_sub.add_parser("stats", help="cache and broker counters")
    query_sub.add_parser("schemes", help="registered recovery schemes")
    query_sub.add_parser("scenarios", help="the curated scenario catalog")
    q_scenario = query_sub.add_parser(
        "scenario", help="run a catalog scenario on the service, cache-first"
    )
    q_scenario.add_argument("name", help="catalog scenario name")
    q_scenario.add_argument(
        "--smoke", action="store_true", help="query the bounded smoke variant"
    )
    q_figure = query_sub.add_parser(
        "figure", help="fetch a Section-5 figure series from the service"
    )
    q_figure.add_argument("name", choices=list(EXPERIMENTAL_FIGURES))
    q_figure.add_argument(
        "--quick", action="store_true", help="use the small spare-surplus sweep"
    )
    q_figure.add_argument("--trials", type=int, default=1)
    q_run = query_sub.add_parser(
        "run", help="execute (or look up) one run spec from a JSON file"
    )
    q_run.add_argument(
        "spec", type=Path, help="JSON file with at least 'scenario' and 'scheme'"
    )
    q_run.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default="interactive",
        help="admission class on the service",
    )
    q_run.add_argument(
        "--stream",
        action="store_true",
        help="stream live per-round NDJSON events instead of one response",
    )

    return parser


def _parse_channel_argument(text: str) -> ChannelModel:
    """argparse type hook for ``--channel`` (clean error instead of a traceback)."""
    try:
        return parse_channel_spec(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_channel_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--channel`` knob of the simulation-running commands."""
    parser.add_argument(
        "--channel",
        type=_parse_channel_argument,
        default=None,
        metavar="SPEC",
        help="control-channel model: 'perfect' (default), 'lossy:<p>', or "
        "'delayed:<k>'; the 'jammed' kind is configured through a scenario "
        "file's [channel] table",
    )


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--shards`` knob of the simulation-running commands."""
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="distribute each run over N column-band worker processes; "
        "results are byte-identical to unsharded execution (same cache "
        "entries), and runs the sharded fast path cannot reproduce fall "
        "back to the sequential engine automatically",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared orchestration flags of the simulation-running commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation runs (1 = serial; "
        "results are identical to serial for the same seeds)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist run records here and reuse them on repeated invocations",
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default="json",
        help="run-record store format under --cache-dir: one JSON file per "
        "record (default) or one concurrent-safe sqlite database",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching even when --cache-dir is given",
    )
    parser.add_argument(
        "--state-cache",
        choices=list(STATE_CACHE_MODES) + ["off"],
        default="clone",
        help="initial-state cache mode: reuse each scenario's built initial "
        "state across schemes and trials as live clones (default), as "
        "compact binary snapshots, or not at all; results are byte-identical "
        "in every mode",
    )


# ------------------------------------------------------------------ commands
def _execution_backend(
    args: argparse.Namespace,
) -> tuple[RunExecutor, Optional[RunCache]]:
    """Executor + optional cache as selected by the shared CLI flags."""
    mode = getattr(args, "state_cache", "clone")
    set_default_state_cache(None if mode == "off" else StateCache(mode=mode))
    executor = make_executor(args.jobs)
    cache: Optional[RunCache] = None
    if args.cache_dir is not None and not args.no_cache:
        cache = make_cache(args.cache_dir, backend=args.cache_backend)
    return executor, cache


def _cache_report(cache: RunCache) -> str:
    """The one-line cache summary printed after a cached command."""
    snapshot = cache.stats.snapshot()
    return (
        f"[cache: {snapshot.hits} runs reused, {snapshot.misses} simulated, "
        f"{snapshot.hit_rate:.0%} hit rate]"
    )


def _emit(result: ExperimentResult, csv_dir: Optional[Path], filename: str) -> None:
    print(result.format())
    if csv_dir is not None:
        path = result.to_csv(csv_dir / filename)
        print(f"[written to {path}]")
    print()


def _figures_command(args: argparse.Namespace) -> int:
    wanted = set(args.which)
    if "all" in wanted or not wanted:
        wanted = set(ALL_FIGURES)
    unknown = wanted - set(ALL_FIGURES)
    if unknown:
        print(f"unknown figures: {sorted(unknown)} (choose from {ALL_FIGURES})", file=sys.stderr)
        return 2

    if "fig1" in wanted:
        print(figure1_hamilton_layout())
        print()
    if "fig3" in wanted:
        _emit(figure3_expected_movements(), args.csv_dir, "fig3_expected_movements.csv")
    if "fig4" in wanted:
        print(figure4_dual_path_layout())
        print()
    if "fig5" in wanted:
        _emit(figure5_distance_estimates(), args.csv_dir, "fig5_distance_estimates.csv")

    if wanted & set(EXPERIMENTAL_FIGURES):
        spare_values = QUICK_SPARE_VALUES if args.quick else PAPER_SPARE_VALUES
        config = ScenarioConfig(seed=args.seed)
        executor, cache = _execution_backend(args)
        experiment = run_section5_experiment(
            spare_values=spare_values,
            config=config,
            trials=args.trials,
            executor=executor,
            cache=cache,
        )
        if cache is not None and cache.hits:
            print(_cache_report(cache))
            print()
        if "fig6" in wanted:
            result = figure6_processes_and_success(experiment)
            _emit(result, args.csv_dir, "fig6_processes_success.csv")
            if args.chart:
                print(
                    ascii_chart(
                        {
                            "SR": result.series("N", "SR_processes"),
                            "AR": result.series("N", "AR_processes"),
                        },
                        title="Figure 6(a): replacement processes initiated",
                        x_label="N",
                        y_label="processes",
                    )
                )
                print()
        if "fig7" in wanted:
            result = figure7_node_movements(experiment)
            _emit(result, args.csv_dir, "fig7_node_movements.csv")
            if args.chart:
                print(
                    ascii_chart(
                        {
                            "SR": result.series("N", "SR_moves"),
                            "AR": result.series("N", "AR_moves"),
                            "SR analytic": result.series("N", "SR_moves_analytic"),
                        },
                        title="Figure 7: number of node movements",
                        x_label="N",
                        y_label="moves",
                    )
                )
                print()
        if "fig8" in wanted:
            result = figure8_total_distance(experiment)
            _emit(result, args.csv_dir, "fig8_total_distance.csv")
            if args.chart:
                print(
                    ascii_chart(
                        {
                            "SR": result.series("N", "SR_distance"),
                            "AR": result.series("N", "AR_distance"),
                        },
                        title="Figure 8: total moving distance (m)",
                        x_label="N",
                        y_label="metres",
                    )
                )
                print()
    return 0


def _compare_command(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        columns=args.columns,
        rows=args.rows,
        communication_range=args.communication_range,
        deployed_count=args.deployed,
        spare_surplus=args.spare_surplus,
        seed=args.seed,
    )
    executor, cache = _execution_backend(args)
    specs = [
        RunSpec(
            scenario=config,
            scheme=scheme,
            seed=args.seed,
            max_rounds=args.max_rounds,
            channel=args.channel,
            shards=args.shards or 1,
        )
        for scheme in args.schemes
    ]
    records = execute_many(specs, executor=executor, cache=cache)
    initial = records[0].metrics
    channel_note = f", channel {args.channel.kind}" if args.channel is not None else ""
    print(
        f"scenario: {config.columns}x{config.rows} grid, r = {config.cell_size:.4f} m, "
        f"{initial.initial_enabled} enabled nodes, {initial.initial_holes} holes, "
        f"{initial.initial_spares} spares (N = {args.spare_surplus}){channel_note}"
    )
    show_traffic = args.channel is not None and args.channel.kind != "perfect"
    columns = [
        "scheme",
        "rounds",
        "processes",
        "success_rate",
        "moves",
        "distance_m",
        "holes_left",
    ]
    if show_traffic:
        columns += ["messages", "dropped"]
    result = ExperimentResult(name="scheme comparison", columns=columns)
    for record in records:
        metrics = record.metrics
        row = dict(
            scheme=record.spec.scheme,
            rounds=metrics.rounds,
            processes=metrics.processes_initiated,
            success_rate=metrics.success_rate,
            moves=metrics.total_moves,
            distance_m=metrics.total_distance,
            holes_left=metrics.final_holes,
        )
        if show_traffic:
            row["messages"] = metrics.messages_sent
            row["dropped"] = metrics.messages_dropped
        result.add_row(**row)
    print(result.format())
    return 0


def _lifetime_command(args: argparse.Namespace) -> int:
    if args.smoke:
        failures = run_lifetime_smoke(jobs=max(2, args.jobs))
        if failures:
            for failure in failures:
                print(f"lifetime smoke FAILED: {failure}", file=sys.stderr)
            return 1
        print("lifetime smoke OK: depletion wired into the round loop, records deterministic")
        return 0

    try:
        config = ScenarioConfig(
            columns=args.columns,
            rows=args.rows,
            communication_range=args.communication_range,
            deployed_count=args.deployed,
            spare_surplus=args.spare_surplus,
            seed=args.seed,
            initial_energy=args.initial_energy,
            initial_energy_jitter=args.energy_jitter,
        )
        energy = EnergyModel(
            idle_cost_per_round=args.idle_cost,
            depletion_threshold=args.depletion_threshold,
        )
        executor, cache = _execution_backend(args)
        result = run_lifetime_experiment(
            config=config,
            schemes=args.schemes,
            energy=energy,
            trials=args.trials,
            max_rounds=args.max_rounds,
            executor=executor,
            cache=cache,
            shards=args.shards or 1,
        )
    except ValueError as error:
        print(f"lifetime: {error}", file=sys.stderr)
        return 2
    if cache is not None and cache.hits:
        print(_cache_report(cache))
        print()
    _emit(result, args.csv_dir, "lifetime_comparison.csv")
    best = max(result.rows, key=lambda row: float(row["lifetime_rounds"]))
    print(
        f"longest-lived scheme: {best['scheme']} "
        f"({float(best['lifetime_rounds']):.1f} rounds to the first unrepairable hole)"
    )
    return 0


class _ScenarioCliError(Exception):
    """A scenario reference the CLI should report cleanly (exit 2, no traceback)."""


def _resolve_cli_scenario(args: argparse.Namespace) -> Scenario:
    """Resolve the scenario reference and apply the shared CLI overrides.

    Reference problems (unknown catalog name, missing file, un-inferable
    format) are converted to :class:`_ScenarioCliError` here, at the lookup
    site, so the top-level handler never has to catch broad exception types
    that could mask real bugs inside the subcommands.
    """
    try:
        scenario = resolve_scenario(args.ref)
    except ScenarioValidationError:
        raise
    except (KeyError, FileNotFoundError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise _ScenarioCliError(message) from error
    if getattr(args, "seed", None) is not None:
        scenario = scenario.with_seed(args.seed)
    if getattr(args, "trials", None) is not None:
        scenario = dataclasses.replace(scenario, trials=args.trials)
    if getattr(args, "channel", None) is not None:
        scenario = dataclasses.replace(scenario, channel=args.channel)
    if getattr(args, "shards", None) is not None:
        scenario = dataclasses.replace(scenario, shards=args.shards)
    return scenario


def _scenario_header(scenario: Scenario) -> str:
    config = scenario.scenario
    thinning = (
        "no thinning"
        if config.spare_surplus is None
        else f"N = {config.spare_surplus}"
    )
    extras = []
    if scenario.failures:
        extras.append(f"{len(scenario.failures)} scheduled failure(s)")
    if scenario.energy is not None:
        extras.append(f"energy: idle {scenario.energy.idle_cost_per_round} J/round")
    if scenario.channel is not None:
        extras.append(f"channel: {scenario.channel.kind}")
    if scenario.run_to_exhaustion:
        extras.append("run to exhaustion")
    suffix = f" [{'; '.join(extras)}]" if extras else ""
    return (
        f"scenario {scenario.name}: {config.columns}x{config.rows} grid, "
        f"{config.deployed_count} deployed ({config.deployment}), {thinning}, "
        f"seed {config.seed}, schemes {', '.join(scenario.schemes)}, "
        f"trials {scenario.trials}{suffix}"
    )


def _scenario_list_command(args: argparse.Namespace) -> int:
    from repro.experiments.catalog import load_catalog_scenario

    width = max(len(name) for name in catalog_names())
    for name in catalog_names():
        scenario = load_catalog_scenario(name)
        print(f"{name:<{width}}  {scenario.description}")
    print()
    print("run one with: python -m repro scenario run <name>   (--smoke for the CI variant)")
    return 0


def _scenario_show_command(args: argparse.Namespace) -> int:
    scenario = _resolve_cli_scenario(args)
    print(dumps_scenario(scenario, format=args.format), end="")
    return 0


def _scenario_run_command(args: argparse.Namespace) -> int:
    scenario = _resolve_cli_scenario(args)
    if args.smoke:
        scenario = scenario.smoke_variant()
    executor, cache = _execution_backend(args)
    records = scenario.execute(executor=executor, cache=cache)
    print(_scenario_header(scenario))
    if cache is not None and cache.hits:
        print(_cache_report(cache))
    print()
    result = tabulate_records(scenario, records)
    _emit(result, args.csv_dir, f"scenario_{scenario.name}.csv")
    if args.smoke:
        print(
            f"scenario smoke OK: {scenario.name} ran {len(records)} run(s) "
            f"end to end (bounded at {scenario.max_rounds} rounds)"
        )
    return 0


def _scenario_sweep_command(args: argparse.Namespace) -> int:
    scenario = _resolve_cli_scenario(args)
    variants = [scenario.with_spare_surplus(n) for n in args.spares]
    variant_specs = [variant.run_specs() for variant in variants]
    specs: List[RunSpec] = [spec for chunk in variant_specs for spec in chunk]
    executor, cache = _execution_backend(args)
    records = execute_many(specs, executor=executor, cache=cache)
    print(_scenario_header(scenario))
    if cache is not None and cache.hits:
        print(_cache_report(cache))
    print()
    result = ExperimentResult(
        name=f"scenario sweep {scenario.name}",
        columns=[
            "N",
            "scheme",
            "rounds",
            "converged",
            "processes",
            "success_rate",
            "moves",
            "distance_m",
            "holes_left",
        ],
        description=f"spare-surplus sweep over N = {args.spares}",
    )
    offset = 0
    for n, variant, chunk_specs in zip(args.spares, variants, variant_specs):
        chunk = records[offset : offset + len(chunk_specs)]
        offset += len(chunk)
        table = tabulate_records(variant, chunk)
        for row in table.rows:
            result.add_row(
                N=n,
                **{
                    key: row[key]
                    for key in result.columns
                    if key != "N" and key in row
                },
            )
    _emit(result, args.csv_dir, f"scenario_sweep_{scenario.name}.csv")
    return 0


def _scenario_fuzz_command(args: argparse.Namespace) -> int:
    # Imported lazily: the fuzzing stack is only needed by this subcommand.
    from repro.experiments.catalog import falsified_dir
    from repro.experiments.differential import run_fuzz

    if args.samples is None and args.minutes is None:
        raise _ScenarioCliError(
            "scenario fuzz needs --samples N or --minutes N (e.g. "
            "scenario fuzz --samples 25 --seed 9)"
        )
    if args.samples is not None and args.samples < 1:
        raise _ScenarioCliError(f"--samples must be >= 1, got {args.samples}")
    archive_dir: Optional[Path] = None
    if not args.no_archive:
        archive_dir = args.archive_dir if args.archive_dir is not None else falsified_dir()
    executor, cache = _execution_backend(args)
    budget = (
        f"{args.samples} samples" if args.samples is not None else f"{args.minutes} min"
    )
    print(f"scenario fuzz: seed {args.seed}, {budget}, archive: {archive_dir or 'off'}")
    result = run_fuzz(
        seed=args.seed,
        samples=args.samples,
        minutes=args.minutes,
        archive_dir=archive_dir,
        executor=executor,
        cache=cache,
        log=print,
    )
    if cache is not None and cache.hits:
        print(_cache_report(cache))
    bugs = result.bug_falsifiers
    claims = result.claim_falsifiers
    print(
        f"fuzzed {result.samples_run} scenario(s): "
        f"{len(bugs)} bug falsifier(s), {len(claims)} claim falsifier(s)"
    )
    for falsifier in result.falsifiers:
        where = f" -> {falsifier.path}" if falsifier.path is not None else ""
        print(
            f"  [{falsifier.severity}] {falsifier.oracle} "
            f"(sample {falsifier.sample_index}): {falsifier.violations[0]}{where}"
        )
    if bugs:
        print(
            "scenario fuzz FAILED: bug-severity oracle violations above",
            file=sys.stderr,
        )
        return 1
    print("scenario fuzz OK: no bug-severity oracle violations")
    return 0


def _scenario_replay_command(args: argparse.Namespace) -> int:
    from repro.experiments.differential import run_differential

    scenario = _resolve_cli_scenario(args)
    executor, cache = _execution_backend(args)
    print(_scenario_header(scenario))
    if scenario.description:
        print(scenario.description)
    print()
    report = run_differential(scenario, executor=executor, cache=cache)
    result = ExperimentResult(
        name=f"replay {scenario.name}",
        columns=["oracle", "severity", "verdict", "detail"],
        description="per-oracle verdicts of the differential harness",
    )
    for outcome in report.outcomes:
        result.add_row(
            oracle=outcome.name,
            severity=outcome.severity,
            verdict="PASS" if outcome.passed else "VIOLATED",
            detail=outcome.violations[0] if outcome.violations else "-",
        )
    print(result.format())
    print()
    if report.bug_violations:
        print(
            "replay: bug-severity oracle(s) violated — the simulator has a "
            "reproducible defect",
            file=sys.stderr,
        )
        return 1
    if report.claim_violations:
        names = ", ".join(o.name for o in report.claim_violations)
        print(f"replay: claim oracle(s) {names} reproduced (discovery, not a defect)")
    else:
        print("replay: all oracles passed")
    return 0


def _scenario_docs_command(args: argparse.Namespace) -> int:
    rendering = render_catalog_docs()
    if args.check is not None:
        try:
            current = args.check.read_text()
        except OSError as error:
            print(f"scenario docs --check: cannot read {args.check}: {error}", file=sys.stderr)
            return 1
        if current != rendering:
            print(
                f"scenario docs: {args.check} is out of date; regenerate it with\n"
                f"  python -m repro scenario docs --output {args.check}",
                file=sys.stderr,
            )
            return 1
        print(f"scenario docs: {args.check} is in sync with the catalog")
        return 0
    if args.output is not None:
        args.output.write_text(rendering)
        print(f"[written to {args.output}]")
        return 0
    print(rendering, end="")
    return 0


def _scenario_command(args: argparse.Namespace) -> int:
    handlers = {
        "list": _scenario_list_command,
        "show": _scenario_show_command,
        "run": _scenario_run_command,
        "sweep": _scenario_sweep_command,
        "fuzz": _scenario_fuzz_command,
        "replay": _scenario_replay_command,
        "docs": _scenario_docs_command,
    }
    handler = handlers[args.scenario_command]
    try:
        return handler(args)
    except (ScenarioValidationError, _ScenarioCliError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"scenario: {message}", file=sys.stderr)
        return 2


def _analyze_command(args: argparse.Namespace) -> int:
    moves = analysis.expected_movements(args.spares, args.path_length)
    distance = analysis.expected_total_distance(args.spares, args.path_length, args.cell_size)
    low, average, high = analysis.hop_distance_statistics(args.cell_size)
    print(f"Theorem 2 with N = {args.spares} spares, L = {args.path_length}:")
    print(f"  expected node movements per replacement : {moves:.4f}")
    print(f"  expected total moving distance          : {distance:.2f} m")
    print(f"  per-hop distance (min / avg / max)      : {low:.2f} / {average:.2f} / {high:.2f} m")
    print(
        "  P(converge within 1 / 2 / 5 hops)       : "
        + " / ".join(
            f"{analysis.convergence_probability_within(args.spares, args.path_length, h):.3f}"
            for h in (1, 2, 5)
        )
    )
    return 0


def _layout_command(args: argparse.Namespace) -> int:
    if args.columns % 2 == 1 and args.rows % 2 == 1:
        print(figure4_dual_path_layout(args.columns, args.rows))
    else:
        print(figure1_hamilton_layout(args.columns, args.rows))
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    # Imported lazily: most CLI invocations never need the serving stack.
    from repro.serve.server import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        ServeConfig,
        run_serve_smoke,
        serve_forever,
    )

    if args.smoke:
        failures = run_serve_smoke(workers=max(2, args.workers))
        if failures:
            for failure in failures:
                print(f"serve smoke FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "serve smoke OK: uncached, cached, and streamed queries answered "
            "through the broker"
        )
        return 0
    config = ServeConfig(
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        workers=args.workers,
        queue_limit=args.queue_limit or None,
        verbose=args.verbose,
    )
    return serve_forever(config)


def _print_result_payload(payload: dict) -> None:
    """Render a serve table payload (columns + rows) like a local command."""
    result = ExperimentResult(
        name=str(payload.get("name", "")),
        columns=list(payload["columns"]),
        description=str(payload.get("description", "")),
    )
    for row in payload["rows"]:
        result.add_row(**row)
    print(result.format())


def _query_command(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeError
    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

    url = args.url if args.url is not None else f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    client = ServeClient(url)
    try:
        if args.query_command == "health":
            print(_json.dumps(client.health(), indent=2))
        elif args.query_command == "stats":
            print(_json.dumps(client.stats(), indent=2))
        elif args.query_command == "schemes":
            for scheme in client.schemes():
                print(scheme)
        elif args.query_command == "scenarios":
            entries = client.scenarios()
            width = max(len(str(e["name"])) for e in entries)
            for entry in entries:
                print(f"{entry['name']:<{width}}  {entry['description']}")
        elif args.query_command == "scenario":
            payload = client.scenario(args.name, smoke=args.smoke)
            print(
                f"[service: {payload['cached_records']} of "
                f"{payload['total_records']} records answered from the cache]"
            )
            _print_result_payload(payload)
        elif args.query_command == "figure":
            payload = client.figure(args.name, quick=args.quick, trials=args.trials)
            _print_result_payload(payload)
        elif args.query_command == "run":
            try:
                body = _json.loads(args.spec.read_text())
            except (OSError, _json.JSONDecodeError) as error:
                print(f"query run: cannot read {args.spec}: {error}", file=sys.stderr)
                return 2
            if args.stream:
                for event in client.run_stream(body, priority=args.priority):
                    print(_json.dumps(event))
            else:
                payload = client.run(body, priority=args.priority)
                print(_json.dumps(payload, indent=2))
    except ServeError as error:
        print(f"query: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figures":
        return _figures_command(args)
    if args.command == "compare":
        return _compare_command(args)
    if args.command == "lifetime":
        return _lifetime_command(args)
    if args.command == "scenario":
        return _scenario_command(args)
    if args.command == "analyze":
        return _analyze_command(args)
    if args.command == "layout":
        return _layout_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "query":
        return _query_command(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
