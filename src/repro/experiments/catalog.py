"""Curated scenario catalog: named, shipped, documented workloads.

The catalog is the answer to "what can this simulator do besides the paper's
one workload?": every entry is a declarative scenario file under
:mod:`repro.scenarios` (see :mod:`repro.experiments.scenario_files` for the
format), loadable by name, runnable through ``python -m repro scenario run
<name>``, and documented by the generated ``SCENARIOS.md`` reference
(:func:`render_catalog_docs`, kept in sync by a CI gate).

The entries span the workload space the ROADMAP asks for:

* ``paper-16x16`` — the paper's Section-5 baseline;
* ``corner-holes`` / ``edge-breach`` — deterministic holes at the grid's
  geometric extremes;
* ``region-jamming`` — disk-shaped attack regions, one of them mid-run;
* ``attack-waves`` — repeated random compromise waves;
* ``lifetime-heterogeneous`` — run-until-network-death on jittered batteries;
* ``sparse-per-cell`` — the Theorem-1 sparse regime;
* ``stress-64x64`` — a 4096-cell scale stress;
* ``lossy-channel`` — the paper's workload on a 20%-loss control channel;
* ``delayed-relay`` — a 3-round-latency control backbone;
* ``comms-blackout`` — a mid-recovery communication blackout over the
  attacked region (jammed channel composing with a jamming failure).
"""

from __future__ import annotations

from functools import lru_cache
from importlib.resources import files
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.experiments.scenario_files import Scenario, load_scenario, loads_scenario

__all__ = [
    "CATALOG_NAMES",
    "catalog_names",
    "catalog_scenarios",
    "falsified_dir",
    "falsified_names",
    "falsified_scenarios",
    "load_catalog_scenario",
    "load_falsified_scenario",
    "render_catalog_docs",
    "resolve_scenario",
]

#: Curated order of the shipped scenarios (also the order of SCENARIOS.md).
CATALOG_NAMES: Tuple[str, ...] = (
    "paper-16x16",
    "corner-holes",
    "edge-breach",
    "region-jamming",
    "attack-waves",
    "lifetime-heterogeneous",
    "sparse-per-cell",
    "stress-64x64",
    "lossy-channel",
    "delayed-relay",
    "comms-blackout",
)

_SCENARIO_PACKAGE = "repro.scenarios"


def catalog_names() -> Tuple[str, ...]:
    """Names of every shipped catalog scenario, in curated order."""
    return CATALOG_NAMES


@lru_cache(maxsize=None)
def load_catalog_scenario(name: str) -> Scenario:
    """Load one shipped scenario by name.

    Raises :class:`KeyError` listing the catalog when the name is unknown.
    Results are cached — :class:`Scenario` is frozen, so sharing is safe.
    """
    if name not in CATALOG_NAMES:
        raise KeyError(
            f"unknown catalog scenario {name!r}; available: {list(CATALOG_NAMES)}"
        )
    resource = files(_SCENARIO_PACKAGE).joinpath(f"{name}.toml")
    scenario = loads_scenario(resource.read_text(), format="toml")
    if scenario.name != name:
        raise ValueError(
            f"catalog file {name}.toml declares name = {scenario.name!r}; "
            "the file name and the document name must match"
        )
    return scenario


def catalog_scenarios() -> Dict[str, Scenario]:
    """All shipped scenarios keyed by name, in curated order."""
    return {name: load_catalog_scenario(name) for name in CATALOG_NAMES}


def resolve_scenario(ref: Union[str, Path]) -> Scenario:
    """Resolve a CLI-style reference: a catalog name or a scenario-file path.

    Anything that looks like a file (an existing path, or a ``.toml`` /
    ``.json`` suffix) is loaded from disk; everything else is looked up in
    the curated catalog first and the falsified catalog second, with both
    listings in the error when the lookup fails.
    """
    path = Path(ref)
    if path.suffix.lower() in (".toml", ".json") or path.exists():
        return load_scenario(path)
    name = str(ref)
    if name in CATALOG_NAMES:
        return load_catalog_scenario(name)
    if name in falsified_names():
        return load_falsified_scenario(name)
    raise KeyError(
        f"unknown catalog scenario {name!r}; available: {list(CATALOG_NAMES)}, "
        f"falsified: {list(falsified_names())}"
    )


# --------------------------------------------------------- falsified catalog
def falsified_dir() -> Path:
    """Directory of the shipped falsified scenarios (the fuzz archive).

    ``python -m repro scenario fuzz`` archives minimized falsifiers here by
    default; the directory is part of the ``repro.scenarios`` package data,
    so committed falsifiers ship with the package and feed the generated
    ``SCENARIOS.md`` falsified-catalog section.
    """
    return Path(str(files(_SCENARIO_PACKAGE).joinpath("falsified")))


def falsified_names() -> Tuple[str, ...]:
    """Names of the archived falsifier scenarios, sorted.

    Unlike :data:`CATALOG_NAMES` this listing is discovered from the
    ``falsified/`` directory contents — the fuzzer appends to it over time.
    """
    directory = files(_SCENARIO_PACKAGE).joinpath("falsified")
    if not directory.is_dir():
        return ()
    return tuple(
        sorted(
            entry.name[: -len(".toml")]
            for entry in directory.iterdir()
            if entry.name.endswith(".toml")
        )
    )


def load_falsified_scenario(name: str) -> Scenario:
    """Load one archived falsifier by name.

    Raises :class:`KeyError` listing the falsified catalog when the name is
    unknown.  Not cached: the fuzzer may archive new falsifiers mid-process.
    """
    if name not in falsified_names():
        raise KeyError(
            f"unknown falsified scenario {name!r}; "
            f"available: {list(falsified_names())}"
        )
    resource = files(_SCENARIO_PACKAGE).joinpath("falsified").joinpath(f"{name}.toml")
    scenario = loads_scenario(resource.read_text(), format="toml")
    if scenario.name != name:
        raise ValueError(
            f"falsified file {name}.toml declares name = {scenario.name!r}; "
            "the file name and the document name must match"
        )
    return scenario


def falsified_scenarios() -> Dict[str, Scenario]:
    """All archived falsifiers keyed by name, sorted."""
    return {name: load_falsified_scenario(name) for name in falsified_names()}


# ------------------------------------------------------------- documentation
def render_catalog_docs() -> str:
    """The generated ``SCENARIOS.md`` catalog reference (deterministic).

    Regenerate with ``python -m repro scenario docs --output SCENARIOS.md``;
    CI fails when the committed file drifts from this rendering.
    """
    lines: List[str] = [
        "# Scenario catalog",
        "",
        "<!-- GENERATED FILE - do not edit by hand. -->",
        "<!-- Regenerate with: python -m repro scenario docs --output SCENARIOS.md -->",
        "",
        "Scenario files are declarative TOML/JSON documents (see DESIGN.md and",
        "`repro.experiments.scenario_files`) that compile into ordinary cached",
        "`RunSpec` cells.  Every entry below ships inside the package and runs",
        "with `python -m repro scenario run <name>` (append `--smoke` for the",
        "bounded CI variant); `python -m repro scenario show <name>` prints the",
        "underlying document.",
        "",
        "| scenario | grid | deployed | N | schemes | failures | energy | channel |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name, scenario in catalog_scenarios().items():
        config = scenario.scenario
        spare = "-" if config.spare_surplus is None else str(config.spare_surplus)
        failures = str(len(scenario.failures)) if scenario.failures else "-"
        energy = "yes" if scenario.energy is not None else "-"
        channel = scenario.channel.kind if scenario.channel is not None else "-"
        lines.append(
            f"| [`{name}`](#{name}) | {config.columns}x{config.rows} "
            f"| {config.deployed_count} | {spare} "
            f"| {', '.join(scenario.schemes)} | {failures} | {energy} | {channel} |"
        )
    for name, scenario in catalog_scenarios().items():
        config = scenario.scenario
        lines += ["", f"## {name}", "", scenario.description, ""]
        if scenario.stresses:
            lines += [f"**Stresses:** {scenario.stresses}", ""]
        if scenario.expected:
            lines += [f"**Expected outcome:** {scenario.expected}", ""]
        knobs = [
            ("grid", f"{config.columns}x{config.rows} cells, r = {config.cell_size:.4f} m"),
            ("deployment", f"{config.deployed_count} nodes, {config.deployment}"),
            (
                "thinning",
                "none"
                if config.spare_surplus is None
                else f"to {config.target_enabled} enabled (N = {config.spare_surplus})",
            ),
            ("seed", str(config.seed)),
            ("head policy", config.head_policy),
            ("schemes", ", ".join(scenario.schemes)),
            (
                "rounds",
                ("engine default" if scenario.max_rounds is None else str(scenario.max_rounds))
                + (", run to exhaustion" if scenario.run_to_exhaustion else ""),
            ),
            ("trials", str(scenario.trials)),
        ]
        if config.initial_energy is not None:
            jitter = (
                f" (-{config.initial_energy_jitter:.0%} jitter)"
                if config.initial_energy_jitter
                else ""
            )
            knobs.append(("battery", f"{config.initial_energy} J{jitter}"))
        if scenario.energy is not None:
            knobs.append(
                (
                    "energy model",
                    f"idle {scenario.energy.idle_cost_per_round} J/round, "
                    f"move {scenario.energy.move_cost_per_meter} J/m, "
                    f"message {scenario.energy.message_cost} J, "
                    f"depletion at {scenario.energy.depletion_threshold} J",
                )
            )
        if scenario.channel is not None:
            params = ", ".join(
                f"{key}={value!r}" for key, value in scenario.channel.params
            )
            detail = f"`{scenario.channel.kind}`" + (f" ({params})" if params else "")
            if not scenario.channel.reliable:
                detail += (
                    f", ack timeout {scenario.channel.ack_timeout} rounds, "
                    f"{scenario.channel.max_retries} retries"
                )
            knobs.append(("channel", detail))
        lines += ["| knob | value |", "|---|---|"]
        lines += [f"| {key} | {value} |" for key, value in knobs]
        if scenario.failures:
            lines += ["", "Failure schedule:", ""]
            for event in scenario.failures:
                params = ", ".join(
                    f"{key}={value!r}" for key, value in event.params
                )
                lines.append(f"- round {event.round}: `{event.kind}` ({params})")
        lines += ["", f"Run it: `python -m repro scenario run {name}`"]
    lines += _falsified_docs_lines()
    return "\n".join(lines) + "\n"


def _falsified_docs_lines() -> List[str]:
    """The falsified-catalog section of ``SCENARIOS.md``."""
    lines = [
        "",
        "# Falsified scenarios",
        "",
        "Minimized counterexamples archived by the differential fuzzer",
        "(`python -m repro scenario fuzz`).  Each entry is an ordinary scenario",
        "document whose replay (`python -m repro scenario replay <name>`)",
        "reproduces one oracle violation: claim-severity entries quantify where",
        "a statistical paper claim breaks on individual seeds, bug-severity",
        "entries (none expected to stay archived) reproduce an implementation",
        "defect.",
    ]
    entries = falsified_scenarios()
    if not entries:
        lines += ["", "No falsifiers are currently archived."]
        return lines
    lines += [
        "",
        "| falsifier | grid | schemes | what it falsifies |",
        "|---|---|---|---|",
    ]
    for name, scenario in entries.items():
        config = scenario.scenario
        lines.append(
            f"| `{name}` | {config.columns}x{config.rows} "
            f"| {', '.join(scenario.schemes)} | {scenario.stresses} |"
        )
    for name, scenario in entries.items():
        lines += ["", f"## {name}", "", scenario.description, ""]
        if scenario.stresses:
            lines += [f"**Violation:** {scenario.stresses}", ""]
        lines.append(f"Replay it: `python -m repro scenario replay {name}`")
    return lines
