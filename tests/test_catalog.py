"""Tests for the curated scenario catalog and its generated documentation.

The catalog's contract: every shipped scenario loads, is stored in canonical
(byte-stable) form, documents itself, runs end to end in its bounded smoke
variant, and the committed ``SCENARIOS.md`` matches the generated rendering
(the same gate CI enforces with ``python -m repro scenario docs --check``).
"""

from pathlib import Path

import pytest

from repro.experiments.catalog import (
    CATALOG_NAMES,
    catalog_names,
    catalog_scenarios,
    load_catalog_scenario,
    render_catalog_docs,
    resolve_scenario,
)
from repro.experiments.scenario_files import dump_scenario, dumps_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIO_DIR = REPO_ROOT / "src" / "repro" / "scenarios"


class TestCatalogContents:
    def test_catalog_matches_shipped_files(self):
        shipped = {path.stem for path in SCENARIO_DIR.glob("*.toml")}
        assert shipped == set(CATALOG_NAMES)

    def test_every_entry_loads_and_documents_itself(self):
        for name, scenario in catalog_scenarios().items():
            assert scenario.name == name
            assert scenario.description, f"{name} needs a description"
            assert scenario.stresses, f"{name} needs a 'stresses' line"
            assert scenario.expected, f"{name} needs an 'expected' line"
            assert scenario.schemes

    def test_shipped_files_are_in_canonical_form(self):
        for name in catalog_names():
            path = SCENARIO_DIR / f"{name}.toml"
            assert path.read_text() == dumps_scenario(load_catalog_scenario(name)), (
                f"{path.name} is not in canonical dump form; rewrite it with "
                "dump_scenario(load_scenario(path), path)"
            )

    def test_workload_diversity(self):
        scenarios = catalog_scenarios()
        assert any(s.failures for s in scenarios.values())
        assert any(s.energy is not None for s in scenarios.values())
        assert any(s.run_to_exhaustion for s in scenarios.values())
        assert any(s.scenario.deployment == "per_cell" for s in scenarios.values())
        assert any(s.scenario.cell_count >= 4096 for s in scenarios.values())


class TestCatalogExecution:
    @pytest.mark.parametrize("name", CATALOG_NAMES)
    def test_every_entry_runs_end_to_end_in_smoke_mode(self, name):
        scenario = load_catalog_scenario(name).smoke_variant()
        records = scenario.execute()
        assert len(records) == len(scenario.schemes)
        for record in records:
            assert record.rounds_executed >= 1
            assert record.metrics.initial_enabled > 0


class TestResolution:
    def test_resolve_by_name(self):
        assert resolve_scenario("paper-16x16").name == "paper-16x16"

    def test_resolve_by_path(self, tmp_path):
        scenario = load_catalog_scenario("corner-holes")
        path = tmp_path / "copy.toml"
        dump_scenario(scenario, path)
        assert resolve_scenario(path) == scenario

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(KeyError) as excinfo:
            load_catalog_scenario("no-such")
        assert "paper-16x16" in str(excinfo.value)


class TestGeneratedDocs:
    def test_rendering_is_deterministic_and_complete(self):
        rendering = render_catalog_docs()
        assert rendering == render_catalog_docs()
        for name in CATALOG_NAMES:
            assert f"## {name}" in rendering
        assert "GENERATED FILE" in rendering

    def test_committed_scenarios_md_is_in_sync(self):
        committed = (REPO_ROOT / "SCENARIOS.md").read_text()
        assert committed == render_catalog_docs(), (
            "SCENARIOS.md is out of date; regenerate it with "
            "`python -m repro scenario docs --output SCENARIOS.md`"
        )
