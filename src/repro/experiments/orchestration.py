"""Run orchestration: declarative run specs, pure execution, pluggable executors.

The paper's whole evaluation (Figures 6-8) is one embarrassingly parallel
sweep: every scheme runs on identical scenario builds across a range of spare
counts ``N`` and seeds.  This module decouples *describing* such a cell from
*executing* it:

* :class:`RunSpec` — a frozen, picklable description of one simulation run
  (scenario config + scheme name + controller seed + engine knobs).  Equal
  specs describe byte-identical runs, which is what makes result caching and
  cross-process execution sound.
* :func:`build_initial_state` / :func:`simulate_from` — the two pure halves
  of a run: content-addressed construction of the initial state (the shared
  prefix of every spec over one scenario, served through a
  :class:`~repro.experiments.state_cache.StateCache`) and the simulation
  proper.  :func:`execute_run` is their composition and stays the pure entry
  point ``RunSpec -> RunRecord``.
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  strategies for executing a batch of specs.  Both return records in spec
  order, so identical seeds give identical results regardless of worker
  count.  The parallel executor keeps its worker pool alive across
  ``run_all`` calls, groups specs sharing a scenario into one worker task,
  gives each worker a warm per-process state cache, and ships already-built
  initial states to workers as raw :meth:`WsnState.to_bytes` buffers over
  ``multiprocessing.shared_memory`` instead of pickling them.
* :func:`execute_many` — the one entry point the sweep layer uses: consult an
  optional cache, execute only the missing specs, persist fresh records.

Determinism contract: everything stochastic inside a run is derived from
``spec.scenario.seed`` (deployment + thinning) and ``spec.seed`` (controller
stream) via :func:`repro.sim.rng.derive_rng`, so ``execute_run`` is a pure
function of its spec — with or without a state cache, serial or parallel,
the records are byte-identical (the golden seed-identity suite and the
``state_cache`` differential oracle enforce this).
"""

from __future__ import annotations

import contextlib
import dataclasses
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.experiments.registry import (
    BUILTIN_FACTORIES,
    SCHEME_REGISTRY,
    SchemeFactory,
    make_controller,
)
from repro.network.channel import DEFAULT_CHANNEL, ChannelModel
from repro.network.energy import EnergyModel
from repro.network.failures import FailureEvent, compile_failure_schedule
from repro.network.state import WsnState
from repro.sim.engine import DEFAULT_IDLE_ROUND_LIMIT, RoundBasedEngine
from repro.sim.sharded import ShardedEngine
from repro.sim.metrics import RunMetrics
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state
from repro.experiments.state_cache import StateCache, default_state_cache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.persistence import RunCache

#: Sentinel meaning "use the process-wide default state cache" (which may
#: itself be disabled via ``set_default_state_cache(None)``); distinct from
#: an explicit ``None``, which bypasses state caching outright.
USE_DEFAULT_STATE_CACHE = object()


def _resolve_state_cache(state_cache: object) -> Optional[StateCache]:
    """Map the sentinel/explicit argument onto an actual cache (or ``None``)."""
    if state_cache is USE_DEFAULT_STATE_CACHE:
        return default_state_cache()
    return state_cache  # type: ignore[return-value]


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one simulation run.

    Attributes
    ----------
    scenario:
        The deployment to build (including its deployment/thinning seed).
    scheme:
        Name of the recovery scheme, resolved through the scheme registry.
    seed:
        Seed of the controller random stream (movement targets,
        tie-breaking).  The sweep runner uses the trial seed here so the
        controller stream changes together with the scenario across trials.
    max_rounds:
        Optional hard bound on simulation rounds (``None``: engine default).
    idle_round_limit:
        Consecutive no-progress rounds before the engine declares a stall.
    energy:
        Optional :class:`~repro.network.energy.EnergyModel` the engine applies
        every round (idle drain + engine-driven depletion).  Frozen, so the
        spec stays hashable and picklable.
    run_to_exhaustion:
        Run-until-network-death mode for lifetime workloads (only meaningful
        together with an energy model whose idle drain is positive).
    failures:
        Declarative failure schedule: frozen
        :class:`~repro.network.failures.FailureEvent` entries the engine
        applies at the start of their round (dynamic holes).  Events are
        data, not controller objects, so the spec stays hashable, picklable,
        and cache-addressable; :func:`execute_run` compiles them with
        :func:`~repro.network.failures.compile_failure_schedule`.
    channel:
        The :class:`~repro.network.channel.ChannelModel` carrying the run's
        control-message traffic.  ``None`` means the default perfect
        one-round channel (the paper's assumption).  The channel's random
        stream is derived from ``seed`` with its own label, so loss patterns
        change per trial without perturbing the controller stream.
    shards:
        Number of worker tiles for sharded execution (``1``: the plain
        sequential engine).  Sharded runs are byte-identical to sequential
        ones, so this is an *execution* option, not part of the run's
        identity: it is excluded from spec equality/hashing and therefore
        from the run-cache key — a record cached at one shard count
        satisfies every other.
    shard_mode:
        ``"fork"`` (worker processes) or ``"inline"`` (tiles stepped
        in-process); execution-only, like ``shards``.
    """

    scenario: ScenarioConfig
    scheme: str
    seed: int
    max_rounds: Optional[int] = None
    idle_round_limit: int = DEFAULT_IDLE_ROUND_LIMIT
    energy: Optional[EnergyModel] = None
    run_to_exhaustion: bool = False
    failures: Tuple[FailureEvent, ...] = ()
    channel: Optional[ChannelModel] = None
    shards: int = dataclasses.field(default=1, compare=False)
    shard_mode: str = dataclasses.field(default="fork", compare=False)

    def __post_init__(self) -> None:
        """Normalise an explicit default channel to ``None``.

        ``--channel perfect`` and an omitted channel describe byte-identical
        runs; folding them onto one canonical form keeps spec equality — and
        therefore the run-cache key — semantic rather than syntactic.
        """
        if self.channel == DEFAULT_CHANNEL:
            object.__setattr__(self, "channel", None)

    def controller_rng_label(self) -> str:
        """Label of the controller random stream (kept stable for reproducibility)."""
        return f"{self.scheme}-controller"


@dataclass(frozen=True)
class RunRecord:
    """The outcome of executing one :class:`RunSpec`."""

    spec: RunSpec
    metrics: RunMetrics
    rounds_executed: int
    stalled: bool
    #: Whether the run hit its round bound before finishing (a bound-hit run
    #: with holes left is also reported as stalled).
    exhausted: bool = False
    #: Per-round total remaining energy of the enabled nodes; empty unless the
    #: spec carried an energy model.
    energy_series: Tuple[float, ...] = ()
    cached: bool = False

    @property
    def converged(self) -> bool:
        """Whether the run ended with complete coverage (no holes left)."""
        return self.metrics.coverage_restored


def build_initial_state(
    spec: RunSpec, state_cache: object = USE_DEFAULT_STATE_CACHE
) -> WsnState:
    """The initial state of ``spec`` — the pure, scenario-only half of a run.

    The initial state depends on nothing but ``spec.scenario`` (the
    scenario-defining subset of the run key), so N schemes x T trials over
    one scenario share one build: with a state cache the build happens once
    and every caller gets a private mutable copy; without one this is a plain
    ``build_scenario_state``.  Either way the result is interchangeable —
    the build is deterministic and clone/restore are byte-equivalent.
    """
    cache = _resolve_state_cache(state_cache)
    if cache is None:
        return build_scenario_state(spec.scenario)
    return cache.state_for(spec.scenario)


def simulate_from(state: WsnState, spec: RunSpec) -> RunRecord:
    """Run ``spec``'s scheme on an already-built initial state.

    The second half of :func:`execute_run`: controller construction, RNG
    derivation, and the engine run.  ``state`` must be a private copy of
    ``spec.scenario``'s initial state (it is mutated in place); every
    stochastic draw from here on comes from streams derived off ``spec.seed``,
    which is what makes the build/simulate split well-defined.
    """
    controller = make_controller(spec.scheme, state)
    rng = derive_rng(spec.seed, spec.controller_rng_label())
    engine_kwargs = dict(
        max_rounds=spec.max_rounds,
        failure_schedule=compile_failure_schedule(spec.failures) or None,
        idle_round_limit=spec.idle_round_limit,
        energy_model=spec.energy,
        run_to_exhaustion=spec.run_to_exhaustion,
        channel=spec.channel if spec.channel is not None else DEFAULT_CHANNEL,
        channel_seed=spec.seed,
    )
    if spec.shards > 1:
        def _sequential_rerun() -> RoundBasedEngine:
            # The abort fallback re-executes the spec from scratch: fresh
            # deployment, fresh controller, fresh rng stream — exactly what
            # a shards=1 execute_run would build.
            fresh_state = build_scenario_state(spec.scenario)
            return RoundBasedEngine(
                fresh_state,
                make_controller(spec.scheme, fresh_state),
                derive_rng(spec.seed, spec.controller_rng_label()),
                **engine_kwargs,
            )

        engine: RoundBasedEngine = ShardedEngine(
            state,
            controller,
            rng,
            shards=spec.shards,
            mode=spec.shard_mode,
            sequential_factory=_sequential_rerun,
            **engine_kwargs,
        )
    else:
        engine = RoundBasedEngine(state, controller, rng, **engine_kwargs)
    result = engine.run()
    return RunRecord(
        spec=spec,
        metrics=result.metrics,
        rounds_executed=result.rounds_executed,
        stalled=result.stalled,
        exhausted=result.exhausted,
        energy_series=tuple(result.series.energy),
    )


def execute_run(
    spec: RunSpec,
    _state: Optional[WsnState] = None,
    state_cache: object = USE_DEFAULT_STATE_CACHE,
) -> RunRecord:
    """Build the scenario, run the scheme, and return the resulting record.

    This is the single choke point every sweep cell goes through — serial,
    parallel, and cached execution all bottom out here — and it is now the
    composition of :func:`build_initial_state` and :func:`simulate_from`.
    It must stay a pure, top-level function: worker processes unpickle and
    call it by reference.

    ``_state`` is an internal optimisation hook: a caller that already built
    ``spec.scenario`` may pass a private copy of the resulting state to skip
    the (deterministic, hence equivalent) rebuild.  The copy is mutated in
    place.  ``state_cache`` selects the initial-state cache: the default
    sentinel consults the process-wide cache, ``None`` forces a from-scratch
    build, and an explicit :class:`StateCache` is used as-is.
    """
    state = build_initial_state(spec, state_cache) if _state is None else _state
    return simulate_from(state, spec)


# ------------------------------------------------------------------ executors
def _run_serially(
    specs: Sequence[RunSpec], state_cache: object = USE_DEFAULT_STATE_CACHE
) -> List[RunRecord]:
    """Execute specs in order, building each distinct scenario only once.

    With a state cache every spec draws a private copy from it, so scenario
    sharing works across the whole batch (and across batches).  Without one,
    consecutive specs that share a scenario config (the sweep emits one run
    per scheme with schemes innermost) still get private clones of one base
    state instead of rebuilding the deployment from scratch — the build is
    deterministic, so a clone and a rebuild are interchangeable.
    """
    cache = _resolve_state_cache(state_cache)
    if cache is not None:
        return [
            simulate_from(cache.state_for(spec.scenario), spec) for spec in specs
        ]
    records: List[RunRecord] = []
    base_scenario = None
    base_state: Optional[WsnState] = None
    for spec in specs:
        if base_state is None or spec.scenario != base_scenario:
            base_scenario = spec.scenario
            base_state = build_scenario_state(base_scenario)
        records.append(execute_run(spec, _state=base_state.clone()))
    return records


def _registry_overrides() -> Dict[str, SchemeFactory]:
    """Registrations added or replaced since import that can be pickled.

    Worker processes re-import the registry and therefore only know the
    built-in schemes; anything registered afterwards (and any built-in
    shadowed with ``replace=True``) must be shipped along.  Factories that
    cannot be pickled (lambdas, closures) are skipped — resolving them in a
    worker raises the registry's usual unknown-scheme error.
    """
    overrides: Dict[str, SchemeFactory] = {}
    for name, factory in SCHEME_REGISTRY.items():
        if BUILTIN_FACTORIES.get(name) is factory:
            continue
        try:
            pickle.dumps(factory)
        except Exception:
            continue
        overrides[name] = factory
    return overrides


def _install_registry_overrides(overrides: Dict[str, SchemeFactory]) -> None:
    """Worker-process initializer: replay post-import registrations."""
    SCHEME_REGISTRY.update(overrides)


# ----------------------------------------------------- worker-side execution
#: Number of distinct scenarios each worker process keeps warm.  Persistent
#: pools make this pay across ``run_all`` calls: a sweep that revisits a
#: scenario in a later batch finds it already built in the worker.
WORKER_STATE_CACHE_CAPACITY = 4

#: Lazily-created per-worker-process state cache (module-global so it
#: survives across tasks for the lifetime of the worker).
_worker_state_cache: Optional[StateCache] = None


def _get_worker_state_cache() -> StateCache:
    """The calling worker process's warm state cache (created on first use)."""
    global _worker_state_cache
    if _worker_state_cache is None:
        _worker_state_cache = StateCache(capacity=WORKER_STATE_CACHE_CAPACITY)
    return _worker_state_cache


def _state_from_shared_memory(segment_name: str, config: ScenarioConfig) -> WsnState:
    """Restore an initial state shipped as a shared-memory snapshot.

    The parent placed a raw :meth:`WsnState.to_bytes` buffer into the
    segment; the worker copies it out and closes its mapping immediately.
    The parent owns the segment lifetime: it unlinks (and thereby
    unregisters) the segment after the batch.  Workers deliberately do NOT
    unregister on attach — pool workers share the parent's resource-tracker
    process, where registration is idempotent but a worker-side unregister
    would strip the parent's own entry and break its unlink accounting.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=segment_name)
    try:
        snapshot = bytes(segment.buf)
    finally:
        segment.close()
    return WsnState.from_bytes(snapshot, head_policy=config.head_policy_fn)


def _execute_spec_group(
    payload: Tuple[Tuple[RunSpec, ...], Optional[str], Optional[bytes], bool],
) -> List[RunRecord]:
    """Worker task: execute a group of specs sharing one scenario.

    ``payload`` is ``(specs, segment_name, snapshot, use_worker_cache)``:
    the specs (all with equal ``scenario``), an optional shared-memory
    segment holding the parent's already-built initial state, an optional
    inline snapshot (the pickle fallback when shared memory is unavailable),
    and whether this worker should keep the scenario warm in its own cache.
    Exactly one initial-state build (or restore) happens per group; each
    spec then simulates on a private copy, which is byte-identical to a
    from-scratch run.
    """
    specs, segment_name, snapshot, use_worker_cache = payload
    config = specs[0].scenario
    cache = _get_worker_state_cache() if use_worker_cache else None

    base: Optional[WsnState] = None
    if cache is None or not cache.contains(config):
        if segment_name is not None:
            with contextlib.suppress(Exception):
                base = _state_from_shared_memory(segment_name, config)
        if base is None and snapshot is not None:
            base = WsnState.from_bytes(snapshot, head_policy=config.head_policy_fn)
        if base is None:
            base = build_scenario_state(config)
        if cache is not None:
            cache.put(config, base)
    if cache is not None:
        return [simulate_from(cache.state_for(spec.scenario), spec) for spec in specs]
    assert base is not None
    return [simulate_from(base.clone(), spec) for spec in specs]


def _group_by_scenario(specs: Sequence[RunSpec]) -> List[List[RunSpec]]:
    """Split specs into maximal runs of consecutive equal scenarios.

    Mirrors the sharing structure of :func:`_run_serially`: the sweep emits
    schemes innermost, so grouping consecutive equal scenarios captures the
    N-schemes-x-T-trials duplication without reordering anything.
    """
    groups: List[List[RunSpec]] = []
    for spec in specs:
        if groups and groups[-1][0].scenario == spec.scenario:
            groups[-1].append(spec)
        else:
            groups.append([spec])
    return groups


class RunExecutor(ABC):
    """Strategy interface for executing a batch of run specs.

    Implementations must return one record per spec **in spec order** and
    keep :attr:`runs_executed` up to date (the cache tests rely on it to
    assert that a warm cache causes zero re-executions).
    """

    def __init__(self) -> None:
        #: Total number of specs this executor has actually simulated.
        self.runs_executed = 0

    @abstractmethod
    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec and return their records in spec order."""


class SerialExecutor(RunExecutor):
    """Execute specs one after another in the current process."""

    def __init__(self, state_cache: object = USE_DEFAULT_STATE_CACHE) -> None:
        super().__init__()
        self.state_cache = state_cache

    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec in order in the current process."""
        records = _run_serially(specs, state_cache=self.state_cache)
        self.runs_executed += len(records)
        return records


class ParallelExecutor(RunExecutor):
    """Execute specs across worker processes with deterministic ordering.

    ``ProcessPoolExecutor.map`` preserves input order, so the records come
    back exactly as :class:`SerialExecutor` would produce them; only
    wall-clock time changes with ``jobs``.  Specs and records cross the
    process boundary, controllers never do; initial states cross it only as
    raw snapshot buffers over ``multiprocessing.shared_memory``.

    Three cold-path optimisations stack here:

    * **Persistent pool** — the worker pool survives across ``run_all``
      calls (and therefore across sweep/broker submissions), so repeated
      batches pay interpreter + import start-up once.  The pool is rebuilt
      only when the picklable scheme-registry overrides change.  Call
      :meth:`close` (or use the executor as a context manager) to reap the
      workers early; an unreferenced executor reaps them at GC/interpreter
      exit like any ``ProcessPoolExecutor``.
    * **Scenario grouping** — consecutive specs sharing a scenario travel as
      one worker task, so the shared initial state is built once per group
      in the worker instead of once per spec, and each worker keeps the last
      :data:`WORKER_STATE_CACHE_CAPACITY` scenarios warm for later batches.
    * **Zero-pickle state handoff** — when the parent's state cache already
      holds a group's scenario, its :meth:`WsnState.to_bytes` snapshot is
      placed in a shared-memory segment and workers restore from it instead
      of rebuilding (falling back to an inline snapshot, then to a worker
      build, if shared memory is unavailable).
    """

    def __init__(
        self, jobs: int, state_cache: object = USE_DEFAULT_STATE_CACHE
    ) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.state_cache = state_cache
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_overrides: Optional[Dict[str, SchemeFactory]] = None

    # ------------------------------------------------------------- pool reuse
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, (re-)created only when needed.

        A pool is invalidated when the picklable scheme-registry overrides
        change: workers installed the overrides at start-up, so a new or
        shadowed registration after that must reach fresh workers.
        """
        overrides = _registry_overrides()
        if self._pool is not None and overrides != self._pool_overrides:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_install_registry_overrides,
                initargs=(overrides,),
            )
            self._pool_overrides = overrides
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_overrides = None

    def __enter__(self) -> "ParallelExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: reap the worker pool."""
        self.close()

    # -------------------------------------------------------- state shipping
    def _export_shared_states(
        self, groups: Sequence[Sequence[RunSpec]]
    ) -> Tuple[Dict[str, Tuple[Optional[str], Optional[bytes]]], List[object]]:
        """Publish parent-warm initial states as shared-memory segments.

        Only scenarios the parent state cache already holds are shipped —
        building cold scenarios in the parent would serialize work the
        workers can do concurrently.  Returns ``{scenario_key: (segment_name,
        inline_snapshot)}`` plus the segments themselves (the caller unlinks
        them after the batch).  When a segment cannot be created the snapshot
        ships inline through the task pickle instead — slower, still cheaper
        than a worker rebuild.
        """
        from repro.experiments.state_cache import scenario_key

        cache = _resolve_state_cache(self.state_cache)
        segments: List[object] = []
        transports: Dict[str, Tuple[Optional[str], Optional[bytes]]] = {}
        if cache is None:
            return transports, segments
        for group in groups:
            config = group[0].scenario
            key = scenario_key(config)
            if key in transports:
                continue
            snapshot = cache.snapshot_bytes(config)
            if snapshot is None:
                continue
            try:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(create=True, size=len(snapshot))
                segment.buf[: len(snapshot)] = snapshot
            except Exception:
                transports[key] = (None, snapshot)
                continue
            segments.append(segment)
            transports[key] = (segment.name, None)
        return transports, segments

    @staticmethod
    def _release_segments(segments: Sequence[object]) -> None:
        """Close and unlink the batch's shared-memory segments."""
        for segment in segments:
            with contextlib.suppress(Exception):
                segment.close()
            with contextlib.suppress(Exception):
                segment.unlink()

    # -------------------------------------------------------------- execution
    def run_all(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute the specs across worker processes; records in spec order."""
        from repro.experiments.state_cache import scenario_key

        specs = list(specs)
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            records = _run_serially(specs, state_cache=self.state_cache)
        else:
            groups = _group_by_scenario(specs)
            use_worker_cache = _resolve_state_cache(self.state_cache) is not None
            transports, segments = self._export_shared_states(groups)
            payloads = []
            for group in groups:
                segment_name, snapshot = transports.get(
                    scenario_key(group[0].scenario), (None, None)
                )
                payloads.append(
                    (tuple(group), segment_name, snapshot, use_worker_cache)
                )
            try:
                pool = self._ensure_pool()
                records = [
                    record
                    for group_records in pool.map(_execute_spec_group, payloads)
                    for record in group_records
                ]
            finally:
                self._release_segments(segments)
        self.runs_executed += len(records)
        return records


def make_executor(
    jobs: Optional[int] = None, state_cache: object = USE_DEFAULT_STATE_CACHE
) -> RunExecutor:
    """Executor for ``jobs`` worker processes (``None`` or 1: serial)."""
    if jobs is None or jobs <= 1:
        return SerialExecutor(state_cache=state_cache)
    return ParallelExecutor(jobs, state_cache=state_cache)


# ---------------------------------------------------------------- entry point
def execute_many(
    specs: Sequence[RunSpec],
    executor: Optional[RunExecutor] = None,
    cache: "Optional[RunCache]" = None,
    broker: "Optional[object]" = None,
) -> List[RunRecord]:
    """Execute a batch of specs, reusing cached records where available.

    Records are returned in spec order.  This is a thin wrapper over the
    broker layer (:mod:`repro.experiments.broker`): identical specs within
    the batch are simulated once (``execute_run`` is deterministic, so the
    shared record is what each duplicate would have produced), specs with a
    stored record are answered from the cache with ``record.cached`` set,
    and only the remaining unique misses are simulated through ``executor``
    and persisted before returning.

    Pass ``broker`` (an :class:`~repro.experiments.broker.ExperimentBroker`)
    to route the batch through a long-running broker instead — its cache,
    in-flight dedup, and worker pool then apply across concurrent callers,
    not just within this batch; ``executor``/``cache`` are ignored because
    the broker owns its own.
    """
    from repro.experiments.broker import Priority, execute_batch

    if broker is not None:
        return broker.run(list(specs), priority=Priority.BATCH)
    return execute_batch(specs, executor=executor, cache=cache)
