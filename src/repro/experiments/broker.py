"""The experiment broker: cache-first admission, in-flight dedup, priorities.

The RunSpec/``execute_run``/:class:`~repro.experiments.persistence.RunCache`
pipeline is content-addressed and deterministic, but until this module every
consumer drove it as a one-shot batch.  :class:`ExperimentBroker` turns it
into a long-running service core:

* **Cache-first admission** — ``submit`` answers from the cache before
  touching the queue, so repeated traffic costs one backend lookup.
* **In-flight deduplication** — two submissions of an identical spec (same
  ``run_key``) share one simulation; the second submitter gets the same
  :class:`RunHandle` and therefore the same record.  This is what converts
  the heavy-overlap workload shape of the paper's sweeps (every figure and
  scenario re-asks for the same cells) into near-free lookups.
* **Priority admission** — interactive submissions (a human waiting on an
  HTTP response) overtake batch backfill in the queue.
* **Bounded queue depth** — past the bound, ``submit`` raises
  :class:`BrokerQueueFull` instead of buffering unboundedly; the serve layer
  maps that to HTTP 503.

Determinism makes all of this sound: ``execute_run`` is a pure function of
its spec, so a deduplicated or cached record is byte-identical to what a
private re-simulation would have produced.

The one-shot batch entry point
:func:`~repro.experiments.orchestration.execute_many` is a thin wrapper over
:func:`execute_batch` below, which applies the same cache-first + dedup
policy to a static spec list while still driving misses through a pluggable
:class:`~repro.experiments.orchestration.RunExecutor` (so ``--jobs`` process
parallelism keeps working).
"""

from __future__ import annotations

import dataclasses
import enum
import queue
import threading
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.orchestration import (
    USE_DEFAULT_STATE_CACHE,
    RunExecutor,
    RunRecord,
    RunSpec,
    SerialExecutor,
    _resolve_state_cache,
    execute_run,
)
from repro.experiments.persistence import RunCache, run_key
from repro.experiments.state_cache import StateCacheStats

__all__ = [
    "Priority",
    "BrokerQueueFull",
    "BrokerStats",
    "RunHandle",
    "ExperimentBroker",
    "execute_batch",
]


class Priority(enum.IntEnum):
    """Admission classes: lower values are dequeued first."""

    #: A caller is blocked waiting on the answer (HTTP request, CLI query).
    INTERACTIVE = 0
    #: Backfill work (sweep cells, prefetching); yields to interactive.
    BATCH = 1


class BrokerQueueFull(RuntimeError):
    """Raised by ``submit`` when the pending queue is at its depth bound."""


@dataclasses.dataclass(frozen=True)
class BrokerStats:
    """Point-in-time view of a broker's admission and execution counters.

    Attributes
    ----------
    submitted:
        Total ``submit`` calls accepted (including cache hits and dedups).
    cache_hits:
        Submissions answered directly from the cache.
    dedup_hits:
        Submissions that attached to an already in-flight identical spec.
    executed:
        Simulations actually performed by the workers.
    failed:
        Simulations that raised (their handles carry the exception).
    rejected:
        Submissions refused with :class:`BrokerQueueFull`.
    pending:
        Specs queued but not yet picked up by a worker.
    in_flight:
        Distinct specs admitted but not yet resolved (queued or running).
    """

    submitted: int
    cache_hits: int
    dedup_hits: int
    executed: int
    failed: int
    rejected: int
    pending: int
    in_flight: int

    def as_dict(self) -> Dict[str, int]:
        """JSON-compatible form (used by ``repro serve`` ``/stats``)."""
        return dataclasses.asdict(self)


class RunHandle:
    """Future-style handle on one admitted spec.

    Multiple submissions of the same spec share one handle (in-flight
    dedup), so ``result()`` may be awaited by several callers at once.
    """

    def __init__(self, spec: RunSpec, key: str, *, cached: bool = False) -> None:
        self.spec = spec
        self.key = key
        #: Whether the handle was resolved straight from the cache.
        self.cached = cached
        #: Whether this submit attached to an already in-flight identical spec.
        self.deduplicated = False
        self._event = threading.Event()
        self._record: Optional[RunRecord] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether a record (or an error) is available without blocking."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> RunRecord:
        """Block until the record is available and return it (re-raising errors)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"run {self.key[:12]} not finished within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._record is not None
        return self._record

    def _resolve(self, record: RunRecord) -> None:
        """Publish the record and wake every waiter."""
        self._record = record
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        """Publish a failure and wake every waiter."""
        self._error = error
        self._event.set()


class ExperimentBroker:
    """Long-running execution service over an executor pool and a cache.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.experiments.persistence.RunCache` consulted
        on admission and written through on completion.  Any backend works;
        the sqlite backend is the natural choice when several broker
        processes share one store.
    workers:
        Worker threads draining the queue.  Each runs ``run_fn`` (default:
        the pure :func:`~repro.experiments.orchestration.execute_run`)
        in-process; simulation determinism makes thread scheduling
        irrelevant to results.
    queue_limit:
        Maximum pending (queued, not yet running) specs before ``submit``
        raises :class:`BrokerQueueFull`; ``None`` means unbounded.
    run_fn:
        Execution function ``RunSpec -> RunRecord``; injectable for tests
        (e.g. a gated stub proving dedup performs exactly one simulation).
    state_cache:
        Initial-state cache consulted by the default ``run_fn``: specs
        sharing a scenario (the sweep's N schemes x T trials shape) build
        the initial state once and simulate on private copies.  Defaults to
        the process-wide cache; pass ``None`` to force from-scratch builds.
        Ignored when a custom ``run_fn`` is injected.
    """

    def __init__(
        self,
        cache: Optional[RunCache] = None,
        workers: int = 1,
        queue_limit: Optional[int] = None,
        run_fn: Callable[[RunSpec], RunRecord] = execute_run,
        state_cache: object = USE_DEFAULT_STATE_CACHE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1 or None, got {queue_limit}")
        self.cache = cache
        self.queue_limit = queue_limit
        self.state_cache = state_cache
        self._run_fn = run_fn
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._lock = threading.Lock()
        self._inflight: Dict[str, RunHandle] = {}
        self._sequence = 0
        self._pending = 0
        self._submitted = 0
        self._cache_hits = 0
        self._dedup_hits = 0
        self._executed = 0
        self._failed = 0
        self._rejected = 0
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True, name=f"broker-{i}")
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------- admission
    def submit(
        self, spec: RunSpec, priority: Priority = Priority.BATCH
    ) -> RunHandle:
        """Admit one spec cache-first and return a handle on its record.

        Resolution order: cache hit (immediately-done handle, record flagged
        ``cached``) > in-flight dedup (the existing handle, flagged
        ``deduplicated``) > fresh enqueue.  Raises :class:`BrokerQueueFull`
        when the pending queue is at its bound.
        """
        key = run_key(spec)
        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                with self._lock:
                    self._submitted += 1
                    self._cache_hits += 1
                handle = RunHandle(spec, key, cached=True)
                handle._resolve(dataclasses.replace(hit, cached=True))
                return handle
        with self._lock:
            if self._closed:
                raise RuntimeError("broker is shut down")
            existing = self._inflight.get(key)
            if existing is not None:
                self._submitted += 1
                self._dedup_hits += 1
                existing.deduplicated = True
                return existing
            if self.queue_limit is not None and self._pending >= self.queue_limit:
                self._rejected += 1
                raise BrokerQueueFull(
                    f"broker queue is full ({self._pending} pending, "
                    f"limit {self.queue_limit})"
                )
            self._submitted += 1
            self._sequence += 1
            self._pending += 1
            handle = RunHandle(spec, key)
            self._inflight[key] = handle
            self._queue.put((int(priority), self._sequence, handle))
        return handle

    def submit_many(
        self, specs: Sequence[RunSpec], priority: Priority = Priority.BATCH
    ) -> List[RunHandle]:
        """Admit a batch of specs in order and return their handles."""
        return [self.submit(spec, priority=priority) for spec in specs]

    def run(
        self, specs: Sequence[RunSpec], priority: Priority = Priority.BATCH
    ) -> List[RunRecord]:
        """Admit a batch and block for the records, in spec order."""
        return [handle.result() for handle in self.submit_many(specs, priority)]

    # ------------------------------------------------------------- lifecycle
    def state_cache_stats(self) -> Optional[StateCacheStats]:
        """Counters of the broker's initial-state cache (``None`` if disabled)."""
        cache = _resolve_state_cache(self.state_cache)
        return cache.stats() if cache is not None else None

    def stats(self) -> BrokerStats:
        """A consistent snapshot of the broker's counters."""
        with self._lock:
            return BrokerStats(
                submitted=self._submitted,
                cache_hits=self._cache_hits,
                dedup_hits=self._dedup_hits,
                executed=self._executed,
                failed=self._failed,
                rejected=self._rejected,
                pending=self._pending,
                in_flight=len(self._inflight),
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the worker threads.

        Queued specs are still drained — their submitters hold handles and
        deserve answers — but new ``submit`` calls are refused.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put((max(Priority) + 1, float("inf"), None))
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "ExperimentBroker":
        """Context-manager entry: the broker itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut down and join the workers."""
        self.shutdown(wait=True)

    # --------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        """Drain the priority queue until the shutdown sentinel arrives."""
        while True:
            _, _, handle = self._queue.get()
            if handle is None:
                return
            with self._lock:
                self._pending -= 1
            try:
                if self._run_fn is execute_run:
                    # The default run function threads the broker's state
                    # cache through, so worker threads share one initial
                    # state per scenario (built once, herd-deduplicated by
                    # the cache's per-key build locks).
                    record = execute_run(handle.spec, state_cache=self.state_cache)
                else:
                    record = self._run_fn(handle.spec)
            except BaseException as error:  # noqa: BLE001 - forwarded to waiters
                with self._lock:
                    self._failed += 1
                    self._inflight.pop(handle.key, None)
                handle._fail(error)
                continue
            # Publish to the cache BEFORE leaving the in-flight table: a
            # concurrent submit always sees the spec either in flight or in
            # the cache, never in the gap between the two.
            if self.cache is not None:
                self.cache.put(record)
            with self._lock:
                self._executed += 1
                self._inflight.pop(handle.key, None)
            handle._resolve(record)


# ------------------------------------------------------------------- batches
def execute_batch(
    specs: Sequence[RunSpec],
    executor: Optional[RunExecutor] = None,
    cache: Optional[RunCache] = None,
) -> List[RunRecord]:
    """One-shot broker admission for a static spec list.

    Applies the broker's cache-first + dedup policy without standing up
    worker threads: identical specs within the batch collapse onto one
    simulation (``execute_run`` is deterministic, so the shared record is
    exactly what each duplicate would have produced), cached specs are
    answered from the store, and only the remaining unique misses are driven
    through ``executor`` — preserving process-level ``--jobs`` parallelism
    and the executor's ``runs_executed`` accounting.

    Records come back in spec order; cache hits are flagged ``cached``.
    """
    specs = list(specs)
    executor = executor if executor is not None else SerialExecutor()

    # In-batch dedup: first occurrence of each run_key owns the execution.
    keys = [run_key(spec) for spec in specs]
    owner_index: Dict[str, int] = {}
    for index, key in enumerate(keys):
        owner_index.setdefault(key, index)

    resolved: Dict[str, RunRecord] = {}
    missing: List[RunSpec] = []
    owner_specs = [specs[index] for index in owner_index.values()]
    hits = (
        cache.get_many(owner_specs)
        if cache is not None
        else [None] * len(owner_specs)
    )
    for key, spec, hit in zip(owner_index.keys(), owner_specs, hits):
        if hit is not None:
            resolved[key] = dataclasses.replace(hit, cached=True)
        else:
            missing.append(spec)

    if missing:
        fresh = executor.run_all(missing)
        if cache is not None:
            # One transactional commit for the whole sweep's fresh records
            # instead of a write per record.
            cache.put_many(fresh)
        for record in fresh:
            resolved[run_key(record.spec)] = record
    return [resolved[key] for key in keys]
