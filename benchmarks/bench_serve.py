"""Load benchmark for the ``repro serve`` experiment service.

Stands up an in-process server (ephemeral port, ephemeral sqlite store) and
drives it with the workload shape the broker exists for:

* a **cold pass** — every spec is novel, so each request simulates through
  the broker (per-request latency = queueing + simulation + persistence);
* a **warm pass** — the identical specs again, now answered from the cache
  (per-request latency = one HTTP round-trip + one backend lookup);
* a **herd pass** — many concurrent requests for one novel spec, which the
  broker's in-flight dedup must collapse onto a single simulation.

Two further sections profile the cold path itself, off the HTTP socket —
the exact code broker workers run per cold spec:

* a **cold-path breakdown** — seconds spent building the initial scenario
  state versus simulating from it, per scheme;
* a **sweep-shaped cold workload** — every scheme crossed with several
  trial seeds over a handful of shared scenarios (the shape every sweep
  and figure driver emits), executed once per spec with the initial-state
  cache off and again with it on.  Records from the two passes must be
  byte-identical, and the cached pass must clear
  ``MIN_STATE_CACHE_SPEEDUP``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # writes BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI guards only

Latency is reported honestly: every pass records p50 and max; p99 appears
only when a pass has at least ``P99_MIN_SAMPLES`` requests (over a dozen
requests, "p99" is just the max wearing a statistics costume).  The guards
— enforced in ``--smoke`` and on the full run alike — are:

* warm-cache throughput at least 10x cold throughput (the service exists to
  make repeated queries cheap);
* the herd performs exactly one simulation (in-flight dedup works);
* warm p50 latency under a generous quarter-second ceiling (a cache hit
  must never cost simulation time);
* the sweep-shaped cold workload runs at least 2x faster with the
  initial-state cache on, with byte-identical records.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.orchestration import (
    RunSpec,
    build_initial_state,
    execute_run,
    simulate_from,
)
from repro.experiments.persistence import record_to_dict
from repro.experiments.state_cache import StateCache
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, make_server
from repro.sim.scenario import ScenarioConfig

#: Scenario shape of every benchmarked spec: the paper's Section-5 workload
#: (16x16 grid, 5000 deployed sensors), so cold-pass cost is the cost a real
#: figure query pays.
SCENARIO = {"columns": 16, "rows": 16, "deployed_count": 5000, "spare_surplus": 55}
SCHEMES = ("SR", "AR")
MAX_ROUNDS = 60
WARM_REPEATS = 6
HERD_SIZE = 8
#: Below this many requests a pass reports no p99 — the tail quantile of a
#: dozen samples is just the max.
P99_MIN_SAMPLES = 100
#: Sweep-shaped cold workload shape: per scenario, every scheme is run with
#: ``SWEEP_TRIALS`` controller seeds (the scenario — deployment, thinning —
#: is shared; only the controller randomness differs).
SWEEP_TRIALS = 4
#: Guards (see module docstring).
MIN_WARM_SPEEDUP = 10.0
MAX_WARM_P50_SECONDS = 0.25
MIN_STATE_CACHE_SPEEDUP = 2.0


def spec_payload(scheme: str, seed: int) -> dict:
    """One run-spec request body for the benchmark workload."""
    return {
        "scenario": {**SCENARIO, "seed": seed},
        "scheme": scheme,
        "seed": seed,
        "max_rounds": MAX_ROUNDS,
    }


def build_workload(seeds: int) -> list:
    """The benchmark's distinct specs: every scheme crossed with every seed."""
    return [
        spec_payload(scheme, seed) for scheme in SCHEMES for seed in range(1, seeds + 1)
    ]


def latency_summary(latencies: list) -> dict:
    """p50 always, max always, p99 only when the sample count supports it."""
    ordered = sorted(latencies)
    summary = {
        "latency_p50_seconds": round(statistics.median(ordered), 5),
        "latency_max_seconds": round(ordered[-1], 5),
    }
    if len(ordered) >= P99_MIN_SAMPLES:
        summary["latency_p99_seconds"] = round(
            ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))], 5
        )
    return summary


def timed_pass(client: ServeClient, payloads: list) -> dict:
    """Issue every payload sequentially and summarize latency/throughput."""
    latencies = []
    cached = 0
    started = time.perf_counter()
    for payload in payloads:
        t0 = time.perf_counter()
        response = client.run(payload)
        latencies.append(time.perf_counter() - t0)
        cached += 1 if response["cached"] else 0
    wall = time.perf_counter() - started
    return {
        "requests": len(payloads),
        "cached_answers": cached,
        "wall_seconds": round(wall, 4),
        "specs_per_second": round(len(payloads) / wall, 2),
        **latency_summary(latencies),
    }


def herd_pass(server, client: ServeClient, payload: dict) -> dict:
    """Fire HERD_SIZE concurrent requests for one novel spec; count simulations."""
    before = server.broker.stats()
    results = []
    errors = []

    def ask():
        try:
            results.append(client.run(payload))
        except Exception as error:  # noqa: BLE001 - reported in the summary
            errors.append(str(error))

    threads = [threading.Thread(target=ask) for _ in range(HERD_SIZE)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    after = server.broker.stats()
    executed = after.executed - before.executed
    identical = bool(results) and all(
        r["record"] == results[0]["record"] for r in results
    )
    return {
        "concurrent_requests": HERD_SIZE,
        "errors": errors,
        "wall_seconds": round(wall, 4),
        "simulations_performed": executed,
        "dedup_or_cache_hits": (after.dedup_hits - before.dedup_hits)
        + (after.cache_hits - before.cache_hits),
        "records_identical": identical,
    }


def _sweep_scenario(seed: int) -> ScenarioConfig:
    """The benchmark scenario as a typed config with the given build seed."""
    return ScenarioConfig(**SCENARIO, seed=seed)


def cold_path_breakdown() -> dict:
    """Seconds per cold spec split into state build vs simulation, per scheme.

    This times the two halves of ``execute_run`` directly (no HTTP, no
    state cache), so the split is exactly what a broker worker pays on a
    novel spec.
    """
    config = _sweep_scenario(seed=1)
    started = time.perf_counter()
    state = build_initial_state(
        RunSpec(scenario=config, scheme=SCHEMES[0], seed=1, max_rounds=MAX_ROUNDS),
        state_cache=None,
    )
    build_seconds = time.perf_counter() - started
    simulate = {}
    for scheme in SCHEMES:
        spec = RunSpec(scenario=config, scheme=scheme, seed=2, max_rounds=MAX_ROUNDS)
        started = time.perf_counter()
        simulate_from(state.clone(), spec)
        simulate[scheme] = round(time.perf_counter() - started, 4)
    typical_simulate = statistics.median(simulate.values())
    return {
        "state_build_seconds": round(build_seconds, 4),
        "simulate_seconds": simulate,
        "state_build_fraction_of_cold_spec": round(
            build_seconds / (build_seconds + typical_simulate), 3
        ),
    }


def sweep_cold_pass(scenarios: int) -> dict:
    """Sweep-shaped cold throughput with the initial-state cache off vs on.

    Per scenario the workload holds ``len(SCHEMES) * SWEEP_TRIALS`` specs
    sharing one deployment — the shape every sweep/figure driver emits.
    Both passes run spec-by-spec through ``execute_run`` (the broker
    worker's code path); the baseline disables state caching, the cached
    pass shares one build per scenario through a fresh ``StateCache``.
    """
    specs = [
        RunSpec(
            scenario=_sweep_scenario(seed=scenario_seed),
            scheme=scheme,
            seed=1_000 + trial,
            max_rounds=MAX_ROUNDS,
        )
        for scenario_seed in range(101, 101 + scenarios)
        for trial in range(SWEEP_TRIALS)
        for scheme in SCHEMES
    ]

    started = time.perf_counter()
    baseline_records = [execute_run(spec, state_cache=None) for spec in specs]
    baseline_wall = time.perf_counter() - started

    cache = StateCache(capacity=scenarios, mode="clone")
    started = time.perf_counter()
    cached_records = [execute_run(spec, state_cache=cache) for spec in specs]
    cached_wall = time.perf_counter() - started

    identical = all(
        json.dumps(record_to_dict(a), sort_keys=True)
        == json.dumps(record_to_dict(b), sort_keys=True)
        for a, b in zip(baseline_records, cached_records)
    )
    return {
        "scenarios": scenarios,
        "specs_per_scenario": len(SCHEMES) * SWEEP_TRIALS,
        "specs": len(specs),
        "baseline_wall_seconds": round(baseline_wall, 4),
        "baseline_specs_per_second": round(len(specs) / baseline_wall, 2),
        "cached_wall_seconds": round(cached_wall, 4),
        "cached_specs_per_second": round(len(specs) / cached_wall, 2),
        "state_cache_speedup": round(baseline_wall / cached_wall, 2),
        "records_identical": identical,
        "state_cache_stats": cache.stats().as_dict(),
    }


def run_benchmark(seeds: int, workers: int, sweep_scenarios: int) -> tuple:
    """Execute all passes against a private server; return (report, failures)."""
    server = make_server(ServeConfig(port=0, workers=workers))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(server.url, timeout=300)
    try:
        workload = build_workload(seeds)
        cold = timed_pass(client, workload)
        warm = timed_pass(client, workload * WARM_REPEATS)
        herd = herd_pass(server, client, spec_payload("SR", seed=10_000))
        stats = client.stats()
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()

    breakdown = cold_path_breakdown()
    sweep = sweep_cold_pass(scenarios=sweep_scenarios)

    speedup = warm["specs_per_second"] / cold["specs_per_second"]
    report = {
        "benchmark": "bench_serve",
        "description": (
            "HTTP experiment-service load benchmark: cold pass (every spec "
            "simulated through the broker) vs warm pass (identical specs "
            "answered from the cache) vs a concurrent herd of one novel spec "
            "(in-flight dedup), plus the off-socket cold path itself: the "
            "state-build/simulate split per cold spec and a sweep-shaped "
            "workload run with the initial-state cache off and on "
            "(byte-identical records required); p99 latency is reported only "
            "for passes with >= 100 requests, smaller passes carry p50/max "
            "only; guards: warm_vs_cold_speedup >= 10x, "
            "cold_path.sweep.state_cache_speedup >= 2x"
        ),
        "scenario": SCENARIO,
        "schemes": list(SCHEMES),
        "max_rounds": MAX_ROUNDS,
        "distinct_specs": len(SCHEMES) * seeds,
        "broker_workers": workers,
        "cold": cold,
        "warm": warm,
        "warm_vs_cold_speedup": round(speedup, 1),
        "herd": herd,
        "cold_path": {
            "breakdown": breakdown,
            "sweep": sweep,
        },
        "server_stats": stats,
    }

    failures = []
    if cold["cached_answers"] != 0:
        failures.append("cold pass hit the cache; the workload is not novel")
    if warm["cached_answers"] != warm["requests"]:
        failures.append(
            f"warm pass missed the cache ({warm['cached_answers']} of "
            f"{warm['requests']} answered cached)"
        )
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm-cache throughput is only {speedup:.1f}x cold "
            f"(guard: >= {MIN_WARM_SPEEDUP:.0f}x)"
        )
    if warm["latency_p50_seconds"] > MAX_WARM_P50_SECONDS:
        failures.append(
            f"warm p50 latency {warm['latency_p50_seconds']}s exceeds "
            f"{MAX_WARM_P50_SECONDS}s"
        )
    if herd["errors"]:
        failures.append(f"herd requests errored: {herd['errors'][:3]}")
    if herd["simulations_performed"] != 1:
        failures.append(
            f"herd of {HERD_SIZE} identical requests performed "
            f"{herd['simulations_performed']} simulations (dedup broken)"
        )
    if not herd["records_identical"]:
        failures.append("herd requests received differing records")
    if not sweep["records_identical"]:
        failures.append(
            "state-cached sweep records differ from the cache-off baseline"
        )
    if sweep["state_cache_speedup"] < MIN_STATE_CACHE_SPEEDUP:
        failures.append(
            f"sweep-shaped cold workload is only "
            f"{sweep['state_cache_speedup']:.2f}x faster with the state "
            f"cache (guard: >= {MIN_STATE_CACHE_SPEEDUP:.0f}x)"
        )
    return report, failures


def main(argv=None) -> int:
    """Benchmark entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, guards only, no BENCH_serve.json",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, help="seeds per scheme (distinct specs / 2)"
    )
    parser.add_argument("--workers", type=int, default=2, help="broker worker threads")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_serve.json",
        help="report destination (full runs only)",
    )
    args = parser.parse_args(argv)

    seeds = args.seeds if args.seeds is not None else (2 if args.smoke else 12)
    sweep_scenarios = 2 if args.smoke else 3
    report, failures = run_benchmark(
        seeds=seeds, workers=args.workers, sweep_scenarios=sweep_scenarios
    )

    if failures:
        for failure in failures:
            print(f"bench_serve FAILED: {failure}", file=sys.stderr)
        return 1
    sweep = report["cold_path"]["sweep"]
    print(
        f"bench_serve OK: cold {report['cold']['specs_per_second']} specs/s, "
        f"warm {report['warm']['specs_per_second']} specs/s "
        f"({report['warm_vs_cold_speedup']}x), herd of "
        f"{report['herd']['concurrent_requests']} -> "
        f"{report['herd']['simulations_performed']} simulation, "
        f"state-cached sweep {sweep['state_cache_speedup']}x "
        f"({sweep['baseline_specs_per_second']} -> "
        f"{sweep['cached_specs_per_second']} specs/s, identical records)"
    )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
