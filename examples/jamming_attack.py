#!/usr/bin/env python3
"""Scenario: a jamming attack blows a region-sized hole into the coverage.

This used to be ~100 lines of hand-wired setup; it is now a thin wrapper
over the ``region-jamming`` entry of the shipped scenario catalog — the
whole workload (deployment, the two jamming disks, schemes, round bounds)
lives in a declarative TOML document.  The same experiment runs from the
command line with ``python -m repro scenario run region-jamming``, and
``python -m repro scenario show region-jamming`` prints the document.

Run with ``python examples/jamming_attack.py``.
"""

from __future__ import annotations

from repro import build_scenario_state, derive_rng, load_catalog_scenario
from repro.experiments.scenario_files import tabulate_records
from repro.viz.ascii_grid import render_occupancy


def main() -> None:
    """Run the catalog's region-jamming workload and show the damage it repairs."""
    scenario = load_catalog_scenario("region-jamming")
    print(f"--- {scenario.name} ---")
    print(scenario.description)
    print()

    # Show what the first attack does to the network before any recovery:
    # build the deployment and apply the round-0 events by hand.
    state = build_scenario_state(scenario.scenario)
    print(f"pre-attack holes: {state.hole_count}, spares: {state.spare_count}")
    rng = derive_rng(scenario.scenario.seed, "preview")
    for event in scenario.failures:
        if event.round == 0:
            event.build().apply(state, rng)
    print(f"holes after the first jamming attack: {state.hole_count}")
    print(render_occupancy(state))
    print()

    # The experiment itself is one call; the second attack is injected by
    # the engine mid-recovery, exactly as the scenario file schedules it.
    records = scenario.execute()
    print(tabulate_records(scenario, records).format())
    print()
    print(scenario.expected)


if __name__ == "__main__":
    main()
