"""Unit tests for the mutable network state (WsnState) and its invariants."""

import random

import pytest

from repro.grid.geometry import Point
from repro.grid.head_election import highest_energy_policy
from repro.grid.virtual_grid import GridCoord, VirtualGrid
from repro.network.deployment import deploy_per_cell, deploy_per_cell_counts
from repro.network.node import NodeRole, NodeState, SensorNode
from repro.network.state import WsnState

from helpers import make_hole


class TestConstruction:
    def test_rejects_duplicate_ids(self, small_grid):
        nodes = [
            SensorNode(node_id=1, position=Point(0.5, 0.5)),
            SensorNode(node_id=1, position=Point(1.5, 0.5)),
        ]
        with pytest.raises(ValueError):
            WsnState(small_grid, nodes)

    def test_rejects_nodes_outside_area(self, small_grid):
        with pytest.raises(ValueError):
            WsnState(small_grid, [SensorNode(node_id=0, position=Point(10, 10))])

    def test_initial_heads_elected_everywhere(self, dense_state):
        for coord in dense_state.grid.all_coords():
            head = dense_state.head_of(coord)
            assert head is not None
            assert head.is_head
            assert dense_state.grid.cell_of(head.position) == coord

    def test_counts(self, dense_state):
        assert dense_state.node_count == 60
        assert dense_state.enabled_count == 60
        assert dense_state.spare_count == 40
        assert dense_state.hole_count == 0
        assert dense_state.spare_surplus == 40

    def test_custom_head_policy(self, small_grid, rng):
        nodes = deploy_per_cell(small_grid, 2, rng)
        for i, node in enumerate(nodes):
            node.energy = float(i)
        state = WsnState(small_grid, nodes, head_policy=highest_energy_policy)
        for coord in small_grid.all_coords():
            members = state.members_of(coord)
            head = state.head_of(coord)
            assert head.energy == max(m.energy for m in members)


class TestQueries:
    def test_members_and_spares(self, dense_state):
        coord = GridCoord(1, 1)
        members = dense_state.members_of(coord)
        spares = dense_state.spares_of(coord)
        head = dense_state.head_of(coord)
        assert len(members) == 3
        assert len(spares) == 2
        assert head not in spares
        assert dense_state.has_spare(coord)

    def test_vacant_and_occupied(self, dense_state):
        coord = GridCoord(0, 0)
        assert not dense_state.is_vacant(coord)
        make_hole(dense_state, coord)
        assert dense_state.is_vacant(coord)
        assert coord in dense_state.vacant_cells()
        assert coord not in dense_state.occupied_cells()
        assert dense_state.head_of(coord) is None

    def test_occupancy_and_spare_counts(self, dense_state):
        occupancy = dense_state.occupancy()
        spare_counts = dense_state.spare_counts()
        assert all(count == 3 for count in occupancy.values())
        assert all(count == 2 for count in spare_counts.values())

    def test_cell_of_node(self, dense_state):
        node = dense_state.members_of(GridCoord(2, 3))[0]
        assert dense_state.cell_of_node(node.node_id) == GridCoord(2, 3)

    def test_unknown_node_raises(self, dense_state):
        with pytest.raises(KeyError):
            dense_state.node(10_000)


class TestDisableEnable:
    def test_disable_reelects_head(self, dense_state):
        coord = GridCoord(0, 0)
        original_head = dense_state.head_of(coord)
        dense_state.disable_node(original_head.node_id)
        new_head = dense_state.head_of(coord)
        assert new_head is not None
        assert new_head.node_id != original_head.node_id
        dense_state.check_invariants()

    def test_disable_last_node_creates_hole(self, sparse_state):
        coord = GridCoord(2, 2)
        head = sparse_state.head_of(coord)
        sparse_state.disable_node(head.node_id)
        assert sparse_state.is_vacant(coord)
        assert sparse_state.hole_count == 1
        sparse_state.check_invariants()

    def test_disable_is_idempotent(self, dense_state):
        node = dense_state.members_of(GridCoord(0, 0))[0]
        dense_state.disable_node(node.node_id)
        dense_state.disable_node(node.node_id)
        assert dense_state.enabled_count == 59

    def test_enable_restores_membership(self, sparse_state):
        coord = GridCoord(1, 1)
        head = sparse_state.head_of(coord)
        sparse_state.disable_node(head.node_id, reason=NodeState.MISBEHAVING)
        assert sparse_state.is_vacant(coord)
        sparse_state.enable_node(head.node_id)
        assert not sparse_state.is_vacant(coord)
        assert sparse_state.head_of(coord).node_id == head.node_id
        sparse_state.check_invariants()


class TestMoves:
    def test_move_spare_into_neighbour_cell(self, dense_state, rng):
        source, target = GridCoord(1, 1), GridCoord(1, 2)
        make_hole(dense_state, target)
        spare = dense_state.spares_of(source)[0]
        record = dense_state.move_node(spare.node_id, target, rng, round_index=3)
        assert record.source_cell == source
        assert record.target_cell == target
        assert record.round_index == 3
        assert dense_state.grid.central_area(target).contains(record.target_position)
        assert not dense_state.is_vacant(target)
        assert dense_state.head_of(target).node_id == spare.node_id
        dense_state.check_invariants()

    def test_move_head_triggers_reelection_in_source(self, dense_state, rng):
        source, target = GridCoord(0, 0), GridCoord(0, 1)
        make_hole(dense_state, target)
        head = dense_state.head_of(source)
        dense_state.move_node(head.node_id, target, rng)
        assert dense_state.head_of(source) is not None
        assert dense_state.head_of(source).node_id != head.node_id
        assert dense_state.head_of(target).node_id == head.node_id
        dense_state.check_invariants()

    def test_move_rejects_non_adjacent_by_default(self, dense_state, rng):
        node = dense_state.members_of(GridCoord(0, 0))[0]
        with pytest.raises(ValueError):
            dense_state.move_node(node.node_id, GridCoord(3, 4), rng)

    def test_move_non_adjacent_allowed_when_requested(self, dense_state, rng):
        node = dense_state.spares_of(GridCoord(0, 0))[0]
        record = dense_state.move_node(
            node.node_id, GridCoord(3, 4), rng, enforce_adjacent=False
        )
        assert record.target_cell == GridCoord(3, 4)
        dense_state.check_invariants()

    def test_move_disabled_node_raises(self, dense_state, rng):
        node = dense_state.members_of(GridCoord(0, 0))[0]
        dense_state.disable_node(node.node_id)
        with pytest.raises(RuntimeError):
            dense_state.move_node(node.node_id, GridCoord(0, 1), rng)

    def test_move_accumulates_distance(self, dense_state, rng):
        before = dense_state.total_moved_distance
        spare = dense_state.spares_of(GridCoord(2, 2))[0]
        record = dense_state.move_node(spare.node_id, GridCoord(2, 3), rng)
        assert dense_state.total_moved_distance == pytest.approx(before + record.distance)
        assert dense_state.total_move_count == 1

    def test_move_with_explicit_target_position(self, dense_state, rng):
        spare = dense_state.spares_of(GridCoord(2, 2))[0]
        target_position = Point(2.5, 3.5)
        record = dense_state.move_node(
            spare.node_id, GridCoord(2, 3), rng, target_position=target_position
        )
        assert record.target_position == target_position
        assert dense_state.node(spare.node_id).position == target_position


class TestRolesAndRotation:
    def test_roles_are_consistent(self, dense_state):
        for coord in dense_state.grid.all_coords():
            head = dense_state.head_of(coord)
            for member in dense_state.members_of(coord):
                if member.node_id == head.node_id:
                    assert member.role is NodeRole.HEAD
                else:
                    assert member.role is NodeRole.SPARE

    def test_rotate_head(self, dense_state):
        coord = GridCoord(3, 3)
        dense_state.head_of(coord)
        rotated = dense_state.rotate_head(coord)
        assert rotated is not None
        dense_state.check_invariants()

    def test_heads_mapping_copy(self, dense_state):
        heads = dense_state.heads()
        heads[GridCoord(0, 0)] = None
        assert dense_state.head_of(GridCoord(0, 0)) is not None


class TestClone:
    def test_clone_is_independent(self, dense_state, rng):
        clone = dense_state.clone()
        make_hole(clone, GridCoord(0, 0))
        assert clone.hole_count == 1
        assert dense_state.hole_count == 0
        spare = dense_state.spares_of(GridCoord(1, 0))[0]
        dense_state.move_node(spare.node_id, GridCoord(0, 0), rng)
        assert clone.node(spare.node_id).position != dense_state.node(spare.node_id).position

    def test_clone_preserves_statistics(self, uniform_state):
        clone = uniform_state.clone()
        assert clone.enabled_count == uniform_state.enabled_count
        assert clone.hole_count == uniform_state.hole_count
        assert clone.spare_count == uniform_state.spare_count
        assert clone.heads() == uniform_state.heads()


class TestInvariantsChecker:
    def test_detects_head_in_wrong_cell(self, small_grid, rng):
        nodes = deploy_per_cell_counts(small_grid, {GridCoord(0, 0): 2}, rng)
        state = WsnState(small_grid, nodes)
        # Corrupt the internal index on purpose to check the detector fires.
        state._heads[GridCoord(1, 1)] = nodes[0].node_id
        with pytest.raises(AssertionError):
            state.check_invariants()
