"""Tests for the asynchronous relaxation of the SR scheme.

Section 2 of the paper notes that the round-based description "can be
extended easily to an asynchronous system".  The controller models that by an
``activation_probability`` below 1.0: each responsible head wakes up in a
given round only with that probability.  Recovery must still complete — it
just takes more rounds — and the one-process-per-hole property is untouched.
"""

import pytest

from repro.core.hamilton import build_hamilton_cycle
from repro.core.replacement import HamiltonReplacementController
from repro.grid.virtual_grid import GridCoord
from repro.sim.engine import RoundBasedEngine
from repro.sim.rng import derive_rng
from repro.sim.scenario import ScenarioConfig, build_scenario_state

from helpers import make_hole


def async_controller(state, probability):
    return HamiltonReplacementController(
        build_hamilton_cycle(state.grid), activation_probability=probability
    )


class TestValidation:
    def test_probability_bounds(self, small_cycle):
        with pytest.raises(ValueError):
            HamiltonReplacementController(small_cycle, activation_probability=0.0)
        with pytest.raises(ValueError):
            HamiltonReplacementController(small_cycle, activation_probability=1.5)
        HamiltonReplacementController(small_cycle, activation_probability=1.0)


class TestAsynchronousRecovery:
    def test_recovery_still_completes(self, dense_state):
        for hole in (GridCoord(1, 1), GridCoord(3, 2), GridCoord(0, 4)):
            make_hole(dense_state, hole)
        controller = async_controller(dense_state, probability=0.4)
        engine = RoundBasedEngine(
            dense_state,
            controller,
            derive_rng(3, "async"),
            max_rounds=500,
            idle_round_limit=50,
        )
        result = engine.run()
        assert result.metrics.final_holes == 0
        assert result.metrics.success_rate == 1.0
        assert result.metrics.processes_initiated == 3
        dense_state.check_invariants()

    def test_same_cost_as_synchronous_just_slower(self):
        """Asynchrony delays actions but does not change what moves where."""
        config = ScenarioConfig(
            columns=8, rows=8, deployed_count=400, spare_surplus=40, seed=13
        )
        sync_state = build_scenario_state(config)
        async_state = sync_state.clone()

        sync_controller = async_controller(sync_state, probability=1.0)
        slow_controller = async_controller(async_state, probability=0.3)

        sync_result = RoundBasedEngine(
            sync_state, sync_controller, derive_rng(13, "sync"), max_rounds=500
        ).run()
        async_result = RoundBasedEngine(
            async_state,
            slow_controller,
            derive_rng(13, "async"),
            max_rounds=2000,
            idle_round_limit=60,
        ).run()

        assert sync_result.metrics.final_holes == 0
        assert async_result.metrics.final_holes == 0
        # Same number of holes repaired, same one-process-per-hole accounting.
        assert (
            async_result.metrics.processes_initiated
            == sync_result.metrics.processes_initiated
        )
        # The asynchronous run cannot be faster than the synchronous one.
        assert async_result.metrics.rounds >= sync_result.metrics.rounds
        # Move counts stay in the same ballpark (randomised tie-breaks shift
        # which spare is consumed first, so allow slack).
        assert async_result.metrics.total_moves <= 2 * sync_result.metrics.total_moves + 5

    def test_single_hole_eventually_served(self, sparse_state):
        """Even with a very low activation probability the initiator acts eventually."""
        make_hole(sparse_state, GridCoord(2, 2))
        controller = async_controller(sparse_state, probability=0.1)
        engine = RoundBasedEngine(
            sparse_state,
            controller,
            derive_rng(5, "slow"),
            max_rounds=400,
            idle_round_limit=100,
        )
        engine.run()
        # With no spares anywhere the process cannot converge, but it must at
        # least have been initiated and have moved the hole along the cycle.
        assert controller.total_processes == 1
        assert controller.total_moves >= 1
